//! Runs every registered experiment in sequence and prints all tables —
//! a one-command reproduction of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p wp2p-bench --bin all_figures            # quick
//! cargo run --release -p wp2p-bench --bin all_figures -- --paper # full
//! cargo run --release -p wp2p-bench --bin all_figures -- --only fig8
//! cargo run --release -p wp2p-bench --bin all_figures -- --only fig2a --metrics-out out/
//! ```
//!
//! The figures come from `p2p_simulation::experiments::registry`: each is
//! an [`Experiment`](p2p_simulation::experiments::registry::Experiment)
//! with a name, quick/paper parameter sets, and a canonical seed.
//! `--only <name>` runs just the experiments whose name contains
//! `<name>`. `--metrics-out <dir>` runs each figure with a live metrics
//! handle and writes `<dir>/<figure>.metrics.json` plus
//! `<dir>/<figure>.series.csv` — seed-deterministic under any worker
//! count. `--faults <seed>` skips the figures and instead replays the
//! seed's deterministic fault plan into both worlds with the swarm-wide
//! invariant checker live — the harness for reproducing a failing seed
//! from CI (same seed, byte-identical schedule and trace).
//! `--soak <seed>` skips the figures and runs the chaos soak: every
//! named fault scenario against an armed-resilience swarm, asserting
//! recovery after each fault window and emitting the
//! `soak.time_to_recover` series under `--metrics-out`.
//! `--service <seed>` runs the multi-swarm service tier: sharded
//! trackers, a Zipf/Poisson workload with flash crowds, a mid-run
//! tracker-shard outage, and the Legout clustering probes, emitting the
//! `service.*` gauges and per-shard load series under `--metrics-out`.
//! `--blackout <seed>` runs the dark-tracker-tier degradation ladder:
//! replica failover plus overload shedding while the tier is up, then a
//! permanent whole-tier blackout the swarm must survive on PEX gossip
//! alone (100% completions asserted), emitting the `blackout.*` and
//! `pex.*` gauges under `--metrics-out`.
//! `--exploit <seed>` runs the identity-retention exploit probe (honest
//! retainers vs deliberate id-churners) and emits the `exploit.*`
//! gauges; `--erosion <seed>` sweeps the free-rider share of the
//! fig8 background swarm and emits the `erosion.fr*.{default,retention}_bytes`
//! gauges — both byte-identical across replays and worker counts.
//! `--snapshot` runs the save/restore differential on two scenarios and
//! a warm-started fork sweep (exits nonzero if restore-then-run is not
//! byte-identical to the straight run). `--bisect <seed>` generates a
//! fault schedule with a planted fatal window and isolates the culprit
//! in O(log n) snapshot restores. `--search <seed>` runs the seeded
//! fault-schedule searcher and prints its reproducible
//! `(seed, schedule)` artifact.
//! Sweeps fan out across worker threads (`WP2P_THREADS` overrides the
//! count; `WP2P_THREADS=1` is byte-identical to the parallel output).
//! Per-figure cell counts and timings land in `BENCH_sweeps.json`.
//! A figure driver that panics is reported and the process exits
//! nonzero after the remaining figures have run.

use p2p_simulation::experiments::{
    blackout, erosion, exploit, faults, registry, search, service, soak,
};
use p2p_simulation::harness::{self, SweepStats};
use simnet::fault::{FaultPlan, FaultPlanConfig};
use simnet::time::{SimDuration, SimTime};
use std::time::Instant;
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

struct FigureReport {
    name: &'static str,
    wall_secs: f64,
    sweeps: Vec<SweepStats>,
    panicked: bool,
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

fn sweeps_json(reports: &[FigureReport], total_wall: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"threads\": {},\n  \"total_wall_secs\": {},\n  \"figures\": [\n",
        harness::worker_threads(),
        json_f(total_wall)
    ));
    for (i, r) in reports.iter().enumerate() {
        let cells: usize = r.sweeps.iter().map(|s| s.cells).sum();
        let cell_wall: f64 = r.sweeps.iter().map(|s| s.cell_wall.as_secs_f64()).sum();
        let virtual_secs: f64 = r.sweeps.iter().map(|s| s.virtual_secs).sum();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"panicked\": {}, \"wall_secs\": {}, \
\"cells\": {}, \"cell_wall_secs\": {}, \"speedup\": {}, \"virtual_secs\": {}, \"sweeps\": [",
            r.name,
            r.panicked,
            json_f(r.wall_secs),
            cells,
            json_f(cell_wall),
            json_f(cell_wall / r.wall_secs.max(1e-9)),
            json_f(virtual_secs),
        ));
        for (j, s) in r.sweeps.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"name\": \"{}\", \"points\": {}, \"runs\": {}, \"cells\": {}, \
\"threads\": {}, \"wall_secs\": {}, \"cell_wall_secs\": {}, \"virtual_secs\": {}}}",
                if j == 0 { "" } else { ", " },
                s.name,
                s.points,
                s.runs,
                s.cells,
                s.threads,
                json_f(s.wall.as_secs_f64()),
                json_f(s.cell_wall.as_secs_f64()),
                json_f(s.virtual_secs),
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 == reports.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let preset = preset_from_args();
    preamble("All figures", preset);
    let quick = preset == Preset::Quick;
    let metrics_out = metrics_out_from_args();

    let args: Vec<String> = std::env::args().collect();
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();

    if let Some(seed) = args
        .iter()
        .position(|a| a == "--faults")
        .and_then(|i| args.get(i + 1))
    {
        let seed: u64 = seed.parse().expect("--faults takes a u64 seed");
        let horizon = if quick { 120 } else { 600 };
        let flow_handle = metrics_handle(metrics_out.as_deref(), seed);
        let pkt_handle = metrics_handle(metrics_out.as_deref(), seed);
        let flow = faults::replay_flow_with(seed, SimDuration::from_secs(horizon), &flow_handle);
        let pkt =
            faults::replay_packet_with(seed, SimDuration::from_secs(horizon.min(60)), &pkt_handle);
        print!("{}", flow.schedule);
        println!();
        faults::fault_table(seed, &flow, &pkt).print();
        if let Some(dir) = &metrics_out {
            dump_metrics(dir, "faults_flow", &flow_handle);
            dump_metrics(dir, "faults_packet", &pkt_handle);
        }
        return;
    }

    if let Some(seed) = args
        .iter()
        .position(|a| a == "--soak")
        .and_then(|i| args.get(i + 1))
    {
        let seed: u64 = seed.parse().expect("--soak takes a u64 seed");
        let params = if quick {
            soak::SoakParams::quick()
        } else {
            soak::SoakParams::paper()
        };
        let handle = metrics_handle(metrics_out.as_deref(), seed);
        let points = soak::run_soak_with(&params, &handle, seed);
        for p in &points {
            println!("## {} — {}", p.name, p.what);
            print!("{}", p.outcome.schedule);
            println!();
        }
        soak::soak_table(&points).print();
        if let Some(dir) = &metrics_out {
            dump_metrics(dir, "soak", &handle);
        }
        return;
    }

    if let Some(seed) = args
        .iter()
        .position(|a| a == "--service")
        .and_then(|i| args.get(i + 1))
    {
        let seed: u64 = seed.parse().expect("--service takes a u64 seed");
        let params = if quick {
            service::ServiceParams::quick()
        } else {
            service::ServiceParams::paper()
        };
        let handle = metrics_handle(metrics_out.as_deref(), seed);
        let outcome = service::run_service_with(&params, &handle, seed);
        service::service_table(&outcome).print();
        if let Some(dir) = &metrics_out {
            dump_metrics(dir, "service", &handle);
        }
        return;
    }

    if let Some(seed) = args
        .iter()
        .position(|a| a == "--blackout")
        .and_then(|i| args.get(i + 1))
    {
        let seed: u64 = seed.parse().expect("--blackout takes a u64 seed");
        let params = if quick {
            blackout::BlackoutParams::quick()
        } else {
            blackout::BlackoutParams::paper()
        };
        let handle = metrics_handle(metrics_out.as_deref(), seed);
        let outcome = blackout::run_blackout_with(&params, &handle, seed);
        blackout::blackout_table(&outcome).print();
        if let Some(dir) = &metrics_out {
            dump_metrics(dir, "blackout", &handle);
        }
        return;
    }

    if let Some(seed) = args
        .iter()
        .position(|a| a == "--exploit")
        .and_then(|i| args.get(i + 1))
    {
        let seed: u64 = seed.parse().expect("--exploit takes a u64 seed");
        let params = if quick {
            exploit::ExploitParams::quick()
        } else {
            exploit::ExploitParams::paper()
        };
        let handle = metrics_handle(metrics_out.as_deref(), seed);
        let outcome = exploit::run_exploit_with(&params, &handle, seed);
        exploit::exploit_table(&outcome).print();
        if let Some(dir) = &metrics_out {
            dump_metrics(dir, "exploit", &handle);
        }
        return;
    }

    if let Some(seed) = args
        .iter()
        .position(|a| a == "--erosion")
        .and_then(|i| args.get(i + 1))
    {
        let seed: u64 = seed.parse().expect("--erosion takes a u64 seed");
        let params = if quick {
            erosion::ErosionParams::quick()
        } else {
            erosion::ErosionParams::paper()
        };
        let handle = metrics_handle(metrics_out.as_deref(), seed);
        let points = erosion::run_erosion_with(&params, &handle, seed);
        erosion::erosion_table(&points).print();
        if let Some(dir) = &metrics_out {
            dump_metrics(dir, "erosion", &handle);
        }
        return;
    }

    if args.iter().any(|a| a == "--snapshot") {
        // Save/restore differential on two scenarios, plus a
        // warm-started fork sweep — the CI snapshot job's entry point.
        let seed = 0x5A9;
        let handle = metrics_handle(metrics_out.as_deref(), seed);
        let checks = search::snapshot_selfcheck(seed, &handle);
        search::selfcheck_table(seed, &checks).print();
        println!();
        let warmup = SimTime::from_secs(30);
        let build = || search::diagnostic_world(seed, 32 * 1024 * 1024);
        let nodes: Vec<simnet::addr::NodeId> = (0..4).map(simnet::addr::NodeId).collect();
        let arms: Vec<search::ForkArm> = (0..4)
            .map(|i| search::ForkArm {
                name: format!("arm{i}"),
                plan: FaultPlan::generate(
                    seed + i,
                    &FaultPlanConfig::new(SimDuration::from_secs(150), nodes.clone()),
                ),
            })
            .collect();
        let outs = search::warm_fork_sweep(
            &build,
            warmup,
            SimTime::from_secs(200),
            &arms,
            &search::all_leeches_done,
            &handle,
        );
        search::fork_table(warmup, &outs).print();
        if let Some(dir) = &metrics_out {
            dump_metrics(dir, "snapshot", &handle);
        }
        if checks.iter().any(|c| !c.identical) {
            eprintln!("SNAPSHOT CHECK FAILED: restore-then-run diverged");
            std::process::exit(1);
        }
        return;
    }

    if let Some(seed) = args
        .iter()
        .position(|a| a == "--bisect")
        .and_then(|i| args.get(i + 1))
    {
        let seed: u64 = seed.parse().expect("--bisect takes a u64 seed");
        let handle = metrics_handle(metrics_out.as_deref(), seed);
        // A generated schedule plus one planted fatal window: the
        // bisection isolates whichever window first breaks liveness.
        let nodes: Vec<simnet::addr::NodeId> = (0..4).map(simnet::addr::NodeId).collect();
        let mut plan = FaultPlan::generate(
            seed,
            &FaultPlanConfig::new(SimDuration::from_secs(120), nodes),
        );
        plan.push(
            SimTime::from_secs(45),
            simnet::fault::FaultKind::LinkBlackhole {
                node: simnet::addr::NodeId(1),
                duration: SimDuration::from_secs(3_600),
            },
        );
        let build = || search::diagnostic_world(seed, 32 * 1024 * 1024);
        let out = search::bisect_fault_windows(
            &build,
            &plan,
            SimTime::from_secs(200),
            &search::all_leeches_done,
            &handle,
        );
        print!("{}", out.schedule);
        println!();
        search::bisect_table(seed, &out).print();
        if let Some(dir) = &metrics_out {
            dump_metrics(dir, "bisect", &handle);
        }
        return;
    }

    if let Some(seed) = args
        .iter()
        .position(|a| a == "--search")
        .and_then(|i| args.get(i + 1))
    {
        let seed: u64 = seed.parse().expect("--search takes a u64 seed");
        let params = if quick {
            search::SearchParams::quick()
        } else {
            search::SearchParams::paper()
        };
        let handle = metrics_handle(metrics_out.as_deref(), seed);
        let out = search::search_fault_schedules(&params, &handle, seed);
        println!("{}", out.artifact);
        search::search_table(&out).print();
        if let Some(dir) = &metrics_out {
            dump_metrics(dir, "search", &handle);
        }
        return;
    }

    let total_start = Instant::now();
    let mut reports = Vec::new();
    let mut failed = Vec::new();
    harness::take_stats(); // drop anything recorded before the run
    for e in registry::all() {
        let name = e.name();
        if let Some(pat) = &only {
            if !name.contains(pat.as_str()) {
                continue;
            }
        }
        let params = if quick {
            e.default_params()
        } else {
            e.paper_params()
        };
        let handle = metrics_handle(metrics_out.as_deref(), e.default_seed());
        let t0 = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.run(&params, &handle, e.default_seed())
        }));
        let wall_secs = t0.elapsed().as_secs_f64();
        let panicked = outcome.is_err();
        match outcome {
            Ok(report) => {
                report.print();
                if let Some(dir) = &metrics_out {
                    dump_metrics(dir, name, &handle);
                }
            }
            Err(_) => {
                eprintln!("FIGURE FAILED: {name} panicked");
                failed.push(name);
            }
        }
        println!();
        reports.push(FigureReport {
            name,
            wall_secs,
            sweeps: harness::take_stats(),
            panicked,
        });
    }
    let total_wall = total_start.elapsed().as_secs_f64();

    let json = sweeps_json(&reports, total_wall);
    match std::fs::write("BENCH_sweeps.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_sweeps.json ({} figures)", reports.len()),
        Err(e) => eprintln!("could not write BENCH_sweeps.json: {e}"),
    }
    let cells: usize = reports
        .iter()
        .flat_map(|r| &r.sweeps)
        .map(|s| s.cells)
        .sum();
    let cell_wall: f64 = reports
        .iter()
        .flat_map(|r| &r.sweeps)
        .map(|s| s.cell_wall.as_secs_f64())
        .sum();
    eprintln!(
        "ran {} sweep cells on {} threads: {:.1}s wall, {:.1}s serial-equivalent ({:.2}x)",
        cells,
        harness::worker_threads(),
        total_wall,
        cell_wall,
        cell_wall / total_wall.max(1e-9),
    );
    if !failed.is_empty() {
        eprintln!("{} figure(s) failed: {}", failed.len(), failed.join(", "));
        std::process::exit(1);
    }
}
