//! Regenerates paper Figure 8(a): throughput vs BER, default vs wP2P
//! (age-based manipulation), leech-to-leech over wireless.

use p2p_simulation::experiments::fig8::{fig8a_table, run_fig8a_with, Fig8aParams, FIG8A_SEED};
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 8(a)", preset);
    let params = match preset {
        Preset::Quick => Fig8aParams::quick(),
        Preset::Paper => Fig8aParams::paper(),
    };
    let out = metrics_out_from_args();
    let handle = metrics_handle(out.as_deref(), FIG8A_SEED);
    let points = run_fig8a_with(&params, &handle, FIG8A_SEED);
    fig8a_table(&points).print();
    if let Some(dir) = &out {
        dump_metrics(dir, "fig8a", &handle);
    }
}
