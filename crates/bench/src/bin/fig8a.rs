//! Regenerates paper Figure 8(a): throughput vs BER, default vs wP2P
//! (age-based manipulation), leech-to-leech over wireless.

use p2p_simulation::experiments::fig8::{fig8a_table, run_fig8a, Fig8aParams};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 8(a)", preset);
    let params = match preset {
        Preset::Quick => Fig8aParams::quick(),
        Preset::Paper => Fig8aParams::paper(),
    };
    let points = run_fig8a(&params);
    fig8a_table(&points).print();
}
