//! Large-swarm scale sweep: wall-clock scaling of the flow world under
//! the heap and wheel event-queue schedulers.
//!
//! For every swarm size the same seeded run executes once per scheduler;
//! the two runs must produce identical observables (a built-in
//! differential check on top of the unit-level one), and the wall-clock
//! per simulated second of each lands in `BENCH_scale.json`.
//!
//! Each timed run executes in a fresh child process (the binary re-execs
//! itself with a hidden `--one` flag): back-to-back multi-minute runs in
//! one process let allocator and page-cache warm-up leak from one
//! scheduler's measurement into the next, which at the 2048-peer scale
//! is the same order as the scheduler difference being measured.
//!
//! Flags: `--paper` (paper-scale durations), `--max-size N` (cap the
//! size axis — the CI smoke job uses this), `--xl` (append 16k/65k
//! wheel-only trend rows), `--metrics-out DIR`.
//!
//! XL rows run the wheel scheduler once (no heap counterpart, no
//! repeat): at 65k peers the point is the wall/vsec trend line the
//! incremental solver bends, not a scheduler differential — their
//! `identical` field is `null` in `BENCH_scale.json`.

use p2p_simulation::experiments::scale::{
    run_scale_once_sched, scale_table, run_scale_with, ScaleCell, ScaleParams, SCALE_SEED,
};
use simnet::event::Scheduler;
use std::process::Command;
use std::time::Instant;
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

struct SizeResult {
    peers: usize,
    cell: ScaleCell,
    /// `None` on wheel-only XL trend rows.
    heap_wall: Option<f64>,
    wheel_wall: f64,
    /// `None` when no differential ran (XL trend rows).
    identical: Option<bool>,
}

fn max_size_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--max-size")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn xl_from_args() -> bool {
    std::env::args().any(|a| a == "--xl")
}

/// Hidden child mode: `--one SIZE SCHED SEED` runs a single timed cell
/// and prints one machine-readable line on stdout for the parent.
fn one_from_args() -> Option<(usize, Scheduler, u64)> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--one")?;
    let size = args.get(i + 1)?.parse().ok()?;
    let sched = match args.get(i + 2)?.as_str() {
        "heap" => Scheduler::Heap,
        "wheel" => Scheduler::Wheel,
        _ => return None,
    };
    let seed = args.get(i + 3)?.parse().ok()?;
    Some((size, sched, seed))
}

fn run_one_and_print(params: &ScaleParams, size: usize, sched: Scheduler, seed: u64) {
    let disabled = metrics::handle::MetricsHandle::disabled();
    let t0 = Instant::now();
    let cell = run_scale_once_sched(params, size, sched, &disabled, seed);
    let wall = t0.elapsed().as_secs_f64();
    // Bit-exact fields so the parent's differential check loses nothing
    // in transit.
    println!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {}",
        wall.to_bits(),
        cell.completed,
        cell.mean_progress.to_bits(),
        cell.events,
        cell.queue_peak,
        cell.scheduled,
        cell.cancelled,
        cell.cancel_noops,
        cell.stall_aborts,
        cell.solver_full,
        cell.solver_incremental,
        cell.solver_class,
        cell.solver_resources_touched
    );
}

/// Runs one timed cell in a fresh process and parses its report.
fn timed_child(preset: Preset, size: usize, sched: Scheduler, seed: u64) -> (f64, ScaleCell) {
    let exe = std::env::current_exe().expect("own binary path");
    let mut cmd = Command::new(exe);
    if matches!(preset, Preset::Paper) {
        cmd.arg("--paper");
    }
    let name = match sched {
        Scheduler::Heap => "heap",
        Scheduler::Wheel => "wheel",
    };
    let out = cmd
        .args(["--one", &size.to_string(), name, &seed.to_string()])
        .output()
        .expect("spawn timed child");
    assert!(out.status.success(), "timed child failed for {size} {name}");
    let text = String::from_utf8(out.stdout).expect("child report is UTF-8");
    let f: Vec<u64> = text
        .split_whitespace()
        .map(|v| v.parse().expect("child report field"))
        .collect();
    assert_eq!(f.len(), 13, "malformed child report: {text:?}");
    (
        f64::from_bits(f[0]),
        ScaleCell {
            completed: f[1] as usize,
            mean_progress: f64::from_bits(f[2]),
            events: f[3],
            queue_peak: f[4] as usize,
            scheduled: f[5],
            cancelled: f[6],
            cancel_noops: f[7],
            stall_aborts: f[8],
            solver_full: f[9],
            solver_incremental: f[10],
            solver_class: f[11],
            solver_resources_touched: f[12],
        },
    )
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

fn scale_json(preset: Preset, vsecs: f64, results: &[SizeResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"preset\": \"{}\",\n  \"virtual_secs\": {},\n  \"sizes\": [\n",
        match preset {
            Preset::Quick => "quick",
            Preset::Paper => "paper",
        },
        json_f(vsecs)
    ));
    for (i, r) in results.iter().enumerate() {
        let opt = |x: Option<f64>| x.map_or("null".to_string(), json_f);
        out.push_str(&format!(
            concat!(
                "    {{\"peers\": {}, \"events\": {}, \"queue_peak\": {}, ",
                "\"scheduled\": {}, \"cancelled\": {}, \"stall_aborts\": {}, ",
                "\"solver_full\": {}, \"solver_incremental\": {}, ",
                "\"solver_class\": {}, \"solver_resources_touched\": {}, ",
                "\"heap_wall_secs\": {}, \"wheel_wall_secs\": {}, ",
                "\"heap_wall_per_vsec\": {}, \"wheel_wall_per_vsec\": {}, ",
                "\"wheel_speedup\": {}, \"identical\": {}}}{}\n"
            ),
            r.peers,
            r.cell.events,
            r.cell.queue_peak,
            r.cell.scheduled,
            r.cell.cancelled,
            r.cell.stall_aborts,
            r.cell.solver_full,
            r.cell.solver_incremental,
            r.cell.solver_class,
            r.cell.solver_resources_touched,
            opt(r.heap_wall),
            json_f(r.wheel_wall),
            opt(r.heap_wall.map(|h| h / vsecs)),
            json_f(r.wheel_wall / vsecs),
            opt(r.heap_wall.map(|h| h / r.wheel_wall.max(1e-9))),
            r.identical
                .map_or("null".to_string(), |b| b.to_string()),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let preset = preset_from_args();
    let params = match preset {
        Preset::Quick => ScaleParams::quick(),
        Preset::Paper => ScaleParams::paper(),
    };
    if let Some((size, sched, seed)) = one_from_args() {
        run_one_and_print(&params, size, sched, seed);
        return;
    }
    preamble("Scale sweep", preset);
    // The size axis always reaches 2048 (that is the point of the
    // sweep); the preset only controls per-run duration and file size.
    let mut sizes: Vec<usize> = vec![16, 64, 256, 512, 1024, 2048];
    if let Some(cap) = max_size_from_args() {
        sizes.retain(|&s| s <= cap);
    }
    let vsecs = params.duration.as_secs_f64();
    let mut results: Vec<SizeResult> = Vec::new();
    let mut all_identical = true;
    for (point, &size) in sizes.iter().enumerate() {
        let seed = p2p_simulation::harness::cell_seed(SCALE_SEED, point, 0);
        // Two timed runs per scheduler, each in a fresh child process,
        // in alternating order (heap, wheel, wheel, heap) so any
        // machine-level drift over the four runs cancels; keep the
        // per-scheduler minimum (the least-disturbed measurement).
        let timed = |s: Scheduler| timed_child(preset, size, s, seed);
        let (h1, heap) = timed(Scheduler::Heap);
        let (w1, wheel) = timed(Scheduler::Wheel);
        let (w2, wheel2) = timed(Scheduler::Wheel);
        let (h2, heap2) = timed(Scheduler::Heap);
        let heap_wall = h1.min(h2);
        let wheel_wall = w1.min(w2);
        let identical = heap == wheel && wheel == wheel2 && heap == heap2;
        if !identical {
            all_identical = false;
            eprintln!("DIFFERENTIAL MISMATCH at {size} peers:\n  heap:  {heap:?}\n  wheel: {wheel:?}");
        }
        eprintln!(
            "  {size:>5} peers: heap {heap_wall:>7.2}s, wheel {wheel_wall:>7.2}s \
             ({:.1} ms/vsec vs {:.1} ms/vsec), {} events{}",
            1e3 * heap_wall / vsecs,
            1e3 * wheel_wall / vsecs,
            wheel.events,
            if identical { "" } else { "  [MISMATCH]" }
        );
        results.push(SizeResult {
            peers: size,
            cell: wheel,
            heap_wall: Some(heap_wall),
            wheel_wall,
            identical: Some(identical),
        });
    }
    if xl_from_args() {
        // Wheel-only trend rows at the XL sizes; one child each.
        for (i, &size) in [16_384usize, 65_536].iter().enumerate() {
            let seed = p2p_simulation::harness::cell_seed(SCALE_SEED, sizes.len() + i, 0);
            let (wall, cell) = timed_child(preset, size, Scheduler::Wheel, seed);
            eprintln!(
                "  {size:>5} peers: wheel {wall:>7.2}s ({:.1} ms/vsec), {} events [xl trend]",
                1e3 * wall / vsecs,
                cell.events,
            );
            results.push(SizeResult {
                peers: size,
                cell,
                heap_wall: None,
                wheel_wall: wall,
                identical: None,
            });
        }
    }
    let json = scale_json(preset, vsecs, &results);
    match std::fs::write("BENCH_scale.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_scale.json ({} sizes)", results.len()),
        Err(e) => eprintln!("could not write BENCH_scale.json: {e}"),
    }
    // The registry experiment's deterministic table (wheel, env-default
    // sizes), plus metrics if requested.
    let out = metrics_out_from_args();
    let handle = metrics_handle(out.as_deref(), SCALE_SEED);
    let points = run_scale_with(&params, &handle, SCALE_SEED);
    scale_table(&points).print();
    if let Some(dir) = &out {
        dump_metrics(dir, "scale", &handle);
    }
    assert!(all_identical, "heap and wheel schedulers diverged");
}
