//! Validates `--metrics-out` JSON dumps against the shape documented in
//! `schemas/metrics.schema.json`.
//!
//! ```sh
//! cargo run -p wp2p-bench --bin validate_metrics -- out/*.metrics.json
//! ```
//!
//! The workspace carries no external crates, so instead of a generic
//! JSON-Schema engine this binary hand-implements the schema's rules on
//! top of `metrics::json::Json`. Exits nonzero listing every violation.

use metrics::json::Json;

fn is_uint(v: &Json) -> bool {
    matches!(v.as_num(), Some(x) if x >= 0.0 && x == x.trunc())
}

fn validate(doc: &Json, errors: &mut Vec<String>) {
    let Some(top) = doc.as_obj() else {
        errors.push("top level is not an object".to_string());
        return;
    };
    const KEYS: [&str; 6] = [
        "counters",
        "gauges",
        "histograms",
        "seed",
        "series",
        "trace",
    ];
    for k in KEYS {
        if !top.contains_key(k) {
            errors.push(format!("missing top-level key \"{k}\""));
        }
    }
    for k in top.keys() {
        if !KEYS.contains(&k.as_str()) {
            errors.push(format!("unknown top-level key \"{k}\""));
        }
    }

    if let Some(v) = top.get("seed") {
        if !is_uint(v) {
            errors.push("seed is not a non-negative integer".to_string());
        }
    }

    if let Some(counters) = top.get("counters") {
        match counters.as_obj() {
            Some(m) => {
                for (name, v) in m {
                    if !is_uint(v) {
                        errors.push(format!("counter \"{name}\" is not a non-negative integer"));
                    }
                }
            }
            None => errors.push("counters is not an object".to_string()),
        }
    }

    // Solver gauges are counters-as-gauges: finite, non-negative, never
    // null (a NaN/-inf would dump as null and slip the generic rule).
    const SOLVER_SUFFIXES: [&str; 4] = [
        ".solver_full",
        ".solver_incremental",
        ".solver_class",
        ".solver_resources_touched",
    ];
    // Snapshot tooling gauges carry the same hard contract: blob sizes
    // and near-miss counts are finite non-negative numbers, never null.
    const SNAPSHOT_GAUGES: [&str; 2] = ["snapshot.bytes", "search.near_miss"];
    // Service-tier gauges: clustering coefficients, completion fraction,
    // and per-shard load are finite non-negative, never null. The
    // distortion gauge (fixed minus mobile) may be negative and only
    // gets the generic rule.
    fn is_service_gauge(name: &str) -> bool {
        matches!(name, "service.cluster.fixed" | "service.cluster.mobile" | "service.completed_frac")
            || (name.strip_prefix("service.shard").is_some_and(|rest| {
                let Some(idx) = rest.find('.') else { return false };
                rest[..idx].chars().all(|c| c.is_ascii_digit())
                    && !rest[..idx].is_empty()
                    && matches!(&rest[idx..], ".announces" | ".peak_qps")
            }))
    }
    // Strategy-zoo gauges: per-class downloads and end-of-run spendable
    // credit (exploit), and per-share-point probe downloads (erosion) are
    // finite non-negative, never null. The derived gauges — exploit's
    // churner-to-honest ratio and erosion's retention lead (which may go
    // negative in a hostile swarm) — only get the generic rule.
    fn is_exploit_gauge(name: &str) -> bool {
        matches!(
            name,
            "exploit.honest.bytes"
                | "exploit.honest.credit"
                | "exploit.churner.bytes"
                | "exploit.churner.credit"
        )
    }
    fn is_erosion_gauge(name: &str) -> bool {
        name.strip_prefix("erosion.fr").is_some_and(|rest| {
            let Some(idx) = rest.find('.') else {
                return false;
            };
            !rest[..idx].is_empty()
                && rest[..idx].chars().all(|c| c.is_ascii_digit())
                && matches!(&rest[idx..], ".default_bytes" | ".retention_bytes")
        })
    }
    // Dark-tier blackout gauges: per-arm completion/percentile/load
    // figures, dark-over-on degradation ratios, and the swarm-wide PEX
    // gossip counters are all finite non-negative, never null.
    const BLACKOUT_ARMS: [&str; 4] = ["on_fixed", "on_mobile", "dark_fixed", "dark_mobile"];
    fn is_blackout_gauge(name: &str) -> bool {
        if matches!(
            name,
            "blackout.degradation.fixed" | "blackout.degradation.mobile"
        ) {
            return true;
        }
        name.strip_prefix("blackout.").is_some_and(|rest| {
            rest.split_once('.').is_some_and(|(arm, field)| {
                BLACKOUT_ARMS.contains(&arm)
                    && matches!(
                        field,
                        "completed_frac"
                            | "p50_s"
                            | "p90_s"
                            | "worst_s"
                            | "announces"
                            | "sheds"
                            | "breaker_trips"
                    )
            })
        })
    }
    fn is_pex_gauge(name: &str) -> bool {
        name.strip_prefix("pex.").is_some_and(|rest| {
            rest.split_once('.').is_some_and(|(arm, field)| {
                BLACKOUT_ARMS.contains(&arm) && matches!(field, "sent" | "received" | "learned")
            })
        })
    }
    if let Some(gauges) = top.get("gauges") {
        match gauges.as_obj() {
            Some(m) => {
                for (name, v) in m {
                    if v.as_num().is_none() && *v != Json::Null {
                        errors.push(format!("gauge \"{name}\" is not a number or null"));
                    }
                    if SOLVER_SUFFIXES.iter().any(|s| name.ends_with(s))
                        && !v.as_num().is_some_and(|x| x.is_finite() && x >= 0.0)
                    {
                        errors.push(format!(
                            "gauge \"{name}\": solver gauge must be a finite non-negative number"
                        ));
                    }
                    if SNAPSHOT_GAUGES.contains(&name.as_str())
                        && !v.as_num().is_some_and(|x| x.is_finite() && x >= 0.0)
                    {
                        errors.push(format!(
                            "gauge \"{name}\": snapshot gauge must be a finite non-negative number"
                        ));
                    }
                    if is_service_gauge(name)
                        && !v.as_num().is_some_and(|x| x.is_finite() && x >= 0.0)
                    {
                        errors.push(format!(
                            "gauge \"{name}\": service gauge must be a finite non-negative number"
                        ));
                    }
                    if is_exploit_gauge(name)
                        && !v.as_num().is_some_and(|x| x.is_finite() && x >= 0.0)
                    {
                        errors.push(format!(
                            "gauge \"{name}\": exploit gauge must be a finite non-negative number"
                        ));
                    }
                    if is_erosion_gauge(name)
                        && !v.as_num().is_some_and(|x| x.is_finite() && x >= 0.0)
                    {
                        errors.push(format!(
                            "gauge \"{name}\": erosion gauge must be a finite non-negative number"
                        ));
                    }
                    if (is_blackout_gauge(name) || is_pex_gauge(name))
                        && !v.as_num().is_some_and(|x| x.is_finite() && x >= 0.0)
                    {
                        errors.push(format!(
                            "gauge \"{name}\": blackout gauge must be a finite non-negative number"
                        ));
                    }
                }
            }
            None => errors.push("gauges is not an object".to_string()),
        }
    }

    if let Some(histograms) = top.get("histograms") {
        match histograms.as_obj() {
            Some(m) => {
                for (name, h) in m {
                    let bounds = h.get("bounds").and_then(Json::as_arr);
                    let counts = h.get("counts").and_then(Json::as_arr);
                    let total = h.get("total");
                    match (bounds, counts, total) {
                        (Some(bounds), Some(counts), Some(total)) => {
                            if bounds.iter().any(|b| b.as_num().is_none()) {
                                errors.push(format!("histogram \"{name}\": non-numeric bound"));
                            }
                            if counts.len() != bounds.len() + 1 {
                                errors.push(format!(
                                    "histogram \"{name}\": {} counts for {} bounds (want bounds+1)",
                                    counts.len(),
                                    bounds.len()
                                ));
                            }
                            if counts.iter().any(|c| !is_uint(c)) {
                                errors.push(format!("histogram \"{name}\": non-integer count"));
                            } else {
                                let sum: f64 = counts.iter().filter_map(Json::as_num).sum();
                                if total.as_num() != Some(sum) {
                                    errors.push(format!(
                                        "histogram \"{name}\": total != sum of counts"
                                    ));
                                }
                            }
                        }
                        _ => errors.push(format!("histogram \"{name}\" lacks bounds/counts/total")),
                    }
                }
            }
            None => errors.push("histograms is not an object".to_string()),
        }
    }

    if let Some(series) = top.get("series") {
        match series.as_obj() {
            Some(m) => {
                for (name, s) in m {
                    if !s.get("dropped").is_some_and(is_uint) {
                        errors.push(format!(
                            "series \"{name}\": dropped is not a non-negative integer"
                        ));
                    }
                    match s.get("points").and_then(Json::as_arr) {
                        Some(points) => {
                            let mut last_t = f64::NEG_INFINITY;
                            for (i, p) in points.iter().enumerate() {
                                let pair = p.as_arr().filter(|a| a.len() == 2);
                                let Some(pair) = pair else {
                                    errors.push(format!(
                                        "series \"{name}\" point {i} is not a [t, v] pair"
                                    ));
                                    continue;
                                };
                                match pair[0].as_num() {
                                    Some(t) if t >= last_t => last_t = t,
                                    Some(t) => errors.push(format!(
                                        "series \"{name}\" point {i}: time {t} goes backwards"
                                    )),
                                    None => errors.push(format!(
                                        "series \"{name}\" point {i}: non-numeric time"
                                    )),
                                }
                                if pair[1].as_num().is_none() && pair[1] != Json::Null {
                                    errors.push(format!(
                                        "series \"{name}\" point {i}: value is not a number or null"
                                    ));
                                }
                                // The soak recovery series carries a hard
                                // contract: every window recovered, so every
                                // value is a finite non-negative number.
                                if name == "soak.time_to_recover"
                                    && !pair[1]
                                        .as_num()
                                        .is_some_and(|v| v.is_finite() && v >= 0.0)
                                {
                                    errors.push(format!(
                                        "series \"{name}\" point {i}: recovery time must be a \
finite non-negative number"
                                    ));
                                }
                                // Per-shard tracker load carries the same
                                // contract: a rate is never null, and a dark
                                // shard reads zero, not a gap.
                                if name.starts_with("service.shard")
                                    && name.ends_with(".qps")
                                    && !pair[1]
                                        .as_num()
                                        .is_some_and(|v| v.is_finite() && v >= 0.0)
                                {
                                    errors.push(format!(
                                        "series \"{name}\" point {i}: shard qps must be a \
finite non-negative number"
                                    ));
                                }
                            }
                        }
                        None => errors.push(format!("series \"{name}\": points is not an array")),
                    }
                }
            }
            None => errors.push("series is not an object".to_string()),
        }
    }

    if let Some(trace) = top.get("trace") {
        match trace.as_arr() {
            Some(events) => {
                let mut last_at = f64::NEG_INFINITY;
                for (i, ev) in events.iter().enumerate() {
                    match ev.get("at").and_then(Json::as_num) {
                        Some(at) if at >= last_at && at >= 0.0 => last_at = at,
                        Some(at) => errors.push(format!(
                            "trace event {i}: at {at} is negative or goes backwards"
                        )),
                        None => errors.push(format!("trace event {i}: missing numeric \"at\"")),
                    }
                    for key in ["kind", "message"] {
                        if ev.get(key).and_then(Json::as_str).is_none() {
                            errors.push(format!("trace event {i}: missing string \"{key}\""));
                        }
                    }
                }
            }
            None => errors.push("trace is not an array".to_string()),
        }
    }
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_metrics <dump.metrics.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let mut errors = Vec::new();
        match Json::parse(&text) {
            Ok(doc) => validate(&doc, &mut errors),
            Err(e) => errors.push(format!("not valid JSON: {e}")),
        }
        if errors.is_empty() {
            println!("{path}: ok");
        } else {
            failed = true;
            for e in &errors {
                eprintln!("{path}: {e}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn errors_for(text: &str) -> Vec<String> {
        let mut errors = Vec::new();
        validate(&Json::parse(text).unwrap(), &mut errors);
        errors
    }

    #[test]
    fn accepts_a_real_dump() {
        let handle = metrics::handle::MetricsHandle::enabled(7);
        handle.counter("c").add(3);
        handle.gauge("g").set(1.5);
        handle.histogram("h", &[1.0, 10.0]).record(4.0);
        let s = handle.series("s");
        s.record(simnet::time::SimTime::from_secs(1), 2.0);
        s.record(simnet::time::SimTime::from_secs(2), 3.0);
        assert_eq!(errors_for(&handle.to_json()), Vec::<String>::new());
    }

    #[test]
    fn enforces_the_soak_recovery_contract() {
        // Any other series may carry nulls; the soak recovery series
        // must be finite and non-negative at every point.
        let good = metrics::handle::MetricsHandle::enabled(1);
        let s = good.series("soak.time_to_recover");
        s.record(simnet::time::SimTime::from_secs(0), 0.0);
        s.record(simnet::time::SimTime::from_secs(1), 12.5);
        assert_eq!(errors_for(&good.to_json()), Vec::<String>::new());

        let bad = metrics::handle::MetricsHandle::enabled(1);
        bad.series("soak.time_to_recover")
            .record(simnet::time::SimTime::from_secs(0), -3.0);
        let errs = errors_for(&bad.to_json());
        assert!(
            errs.iter().any(|e| e.contains("finite non-negative")),
            "negative recovery time accepted: {errs:?}"
        );

        let nan = metrics::handle::MetricsHandle::enabled(1);
        nan.series("soak.time_to_recover")
            .record(simnet::time::SimTime::from_secs(0), f64::NAN);
        assert!(
            !errors_for(&nan.to_json()).is_empty(),
            "non-finite recovery time accepted"
        );
    }

    #[test]
    fn enforces_the_solver_gauge_contract() {
        let good = metrics::handle::MetricsHandle::enabled(1);
        good.gauge("scale.n256.solver_full").set(3.0);
        good.gauge("scale.n256.solver_incremental").set(120.0);
        good.gauge("scale.n256.solver_class").set(41.0);
        good.gauge("scale.n256.solver_resources_touched").set(950.0);
        assert_eq!(errors_for(&good.to_json()), Vec::<String>::new());

        let negative = metrics::handle::MetricsHandle::enabled(1);
        negative.gauge("scale.n256.solver_class").set(-1.0);
        let errs = errors_for(&negative.to_json());
        assert!(
            errs.iter().any(|e| e.contains("solver gauge")),
            "negative solver gauge accepted: {errs:?}"
        );

        // Non-finite gauges dump as null — the solver contract must
        // catch that too, while other gauges may stay null.
        let nan = metrics::handle::MetricsHandle::enabled(1);
        nan.gauge("scale.n64.solver_full").set(f64::NAN);
        nan.gauge("other.gauge").set(f64::NAN);
        let errs = errors_for(&nan.to_json());
        assert_eq!(errs.len(), 1, "exactly the solver gauge flagged: {errs:?}");
        assert!(errs[0].contains("solver_full"));
    }

    #[test]
    fn enforces_the_snapshot_gauge_contract() {
        let good = metrics::handle::MetricsHandle::enabled(1);
        good.gauge("snapshot.bytes").set(28_307.0);
        good.gauge("search.near_miss").set(2.0);
        assert_eq!(errors_for(&good.to_json()), Vec::<String>::new());

        let negative = metrics::handle::MetricsHandle::enabled(1);
        negative.gauge("snapshot.bytes").set(-1.0);
        let errs = errors_for(&negative.to_json());
        assert!(
            errs.iter().any(|e| e.contains("snapshot gauge")),
            "negative snapshot.bytes accepted: {errs:?}"
        );

        // Non-finite values dump as null and must be flagged.
        let nan = metrics::handle::MetricsHandle::enabled(1);
        nan.gauge("search.near_miss").set(f64::NAN);
        let errs = errors_for(&nan.to_json());
        assert!(
            errs.iter().any(|e| e.contains("search.near_miss")),
            "NaN near-miss gauge accepted: {errs:?}"
        );
    }

    #[test]
    fn enforces_the_service_tier_contract() {
        let good = metrics::handle::MetricsHandle::enabled(1);
        good.gauge("service.cluster.fixed").set(1.54);
        good.gauge("service.cluster.mobile").set(1.37);
        good.gauge("service.cluster.distortion").set(0.17);
        good.gauge("service.completed_frac").set(0.99);
        good.gauge("service.shard0.announces").set(12_785.0);
        good.gauge("service.shard0.peak_qps").set(277.7);
        let s = good.series("service.shard0.qps");
        s.record(simnet::time::SimTime::from_secs(10), 277.7);
        s.record(simnet::time::SimTime::from_secs(20), 0.0);
        assert_eq!(errors_for(&good.to_json()), Vec::<String>::new());

        // The distortion gauge may be negative; the coefficients may not.
        let distorted = metrics::handle::MetricsHandle::enabled(1);
        distorted.gauge("service.cluster.distortion").set(-0.2);
        assert_eq!(errors_for(&distorted.to_json()), Vec::<String>::new());

        let negative = metrics::handle::MetricsHandle::enabled(1);
        negative.gauge("service.cluster.fixed").set(-0.5);
        let errs = errors_for(&negative.to_json());
        assert!(
            errs.iter().any(|e| e.contains("service gauge")),
            "negative clustering coefficient accepted: {errs:?}"
        );

        // Non-finite shard load dumps as null and must be flagged.
        let nan = metrics::handle::MetricsHandle::enabled(1);
        nan.gauge("service.shard3.peak_qps").set(f64::NAN);
        nan.series("service.shard3.qps")
            .record(simnet::time::SimTime::from_secs(0), f64::NAN);
        let errs = errors_for(&nan.to_json());
        assert!(
            errs.iter().any(|e| e.contains("service gauge")),
            "NaN peak qps accepted: {errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("shard qps")),
            "NaN shard qps series accepted: {errs:?}"
        );
    }

    #[test]
    fn enforces_the_strategy_zoo_contract() {
        let good = metrics::handle::MetricsHandle::enabled(1);
        good.gauge("exploit.honest.bytes").set(32_400_000.0);
        good.gauge("exploit.honest.credit").set(7_227_965.0);
        good.gauge("exploit.churner.bytes").set(22_100_000.0);
        good.gauge("exploit.churner.credit").set(0.0);
        good.gauge("exploit.advantage").set(0.68);
        good.gauge("erosion.fr0.default_bytes").set(15_100_000.0);
        good.gauge("erosion.fr0.retention_bytes").set(22_300_000.0);
        good.gauge("erosion.fr40.lead").set(500_000.0);
        assert_eq!(errors_for(&good.to_json()), Vec::<String>::new());

        // The lead is retention minus default and may go negative.
        let hostile = metrics::handle::MetricsHandle::enabled(1);
        hostile.gauge("erosion.fr40.lead").set(-2_000_000.0);
        assert_eq!(errors_for(&hostile.to_json()), Vec::<String>::new());

        let negative = metrics::handle::MetricsHandle::enabled(1);
        negative.gauge("exploit.churner.credit").set(-1.0);
        let errs = errors_for(&negative.to_json());
        assert!(
            errs.iter().any(|e| e.contains("exploit gauge")),
            "negative exploit credit accepted: {errs:?}"
        );

        // Non-finite probe bytes dump as null and must be flagged.
        let nan = metrics::handle::MetricsHandle::enabled(1);
        nan.gauge("erosion.fr20.retention_bytes").set(f64::NAN);
        let errs = errors_for(&nan.to_json());
        assert!(
            errs.iter().any(|e| e.contains("erosion gauge")),
            "NaN erosion bytes accepted: {errs:?}"
        );
    }

    #[test]
    fn enforces_the_blackout_contract() {
        let good = metrics::handle::MetricsHandle::enabled(1);
        good.gauge("blackout.dark_fixed.completed_frac").set(1.0);
        good.gauge("blackout.dark_mobile.p50_s").set(212.0);
        good.gauge("blackout.on_fixed.sheds").set(3.0);
        good.gauge("blackout.on_mobile.breaker_trips").set(0.0);
        good.gauge("blackout.degradation.fixed").set(1.42);
        good.gauge("pex.dark_fixed.sent").set(310.0);
        good.gauge("pex.dark_mobile.learned").set(14.0);
        assert_eq!(errors_for(&good.to_json()), Vec::<String>::new());

        let negative = metrics::handle::MetricsHandle::enabled(1);
        negative.gauge("blackout.dark_fixed.p90_s").set(-1.0);
        let errs = errors_for(&negative.to_json());
        assert!(
            errs.iter().any(|e| e.contains("blackout gauge")),
            "negative blackout percentile accepted: {errs:?}"
        );

        // Non-finite gossip counters dump as null and must be flagged;
        // a gauge outside the four arms only gets the generic rule.
        let nan = metrics::handle::MetricsHandle::enabled(1);
        nan.gauge("pex.on_fixed.received").set(f64::NAN);
        nan.gauge("pex.someday.received").set(f64::NAN);
        let errs = errors_for(&nan.to_json());
        assert_eq!(errs.len(), 1, "exactly the arm gauge flagged: {errs:?}");
        assert!(errs[0].contains("pex.on_fixed.received"));
    }

    #[test]
    fn rejects_shape_violations() {
        let base = metrics::handle::MetricsHandle::enabled(0).to_json();
        assert!(errors_for(&base).is_empty());
        assert!(!errors_for("{}").is_empty(), "missing keys");
        let bad = base.replace("\"seed\":0", "\"seed\":-1.5");
        assert!(!errors_for(&bad).is_empty(), "bad seed");
    }
}
