//! Regenerates paper Figure 4(b, c): playable fraction vs downloaded
//! fraction under rarest-first fetching, for a small and a large file.

use p2p_simulation::experiments::playability::{
    playability_table, run_playability, PlayabilityParams,
};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 4(b,c)", preset);
    let (small, large) = match preset {
        Preset::Quick => (
            PlayabilityParams::quick_5mb(),
            PlayabilityParams::quick_large(),
        ),
        Preset::Paper => (
            PlayabilityParams::paper_5mb(),
            PlayabilityParams::paper_large(),
        ),
    };
    let small_curve = run_playability(&small, None, 0x4B);
    playability_table(
        "Figure 4(b): Playable % vs downloaded % — 5 MB file, rarest-first",
        &small_curve,
        None,
    )
    .print();
    let large_curve = run_playability(&large, None, 0x4C);
    playability_table(
        "Figure 4(c): Playable % vs downloaded % — large file, rarest-first",
        &large_curve,
        None,
    )
    .print();
}
