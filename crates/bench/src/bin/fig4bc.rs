//! Regenerates paper Figure 4(b, c): playable fraction vs downloaded
//! fraction under rarest-first fetching, for a small and a large file.

use metrics::handle::MetricsHandle;
use p2p_simulation::experiments::fig4::FIG4BC_SEED;
use p2p_simulation::experiments::playability::{
    playability_table, run_playability_with, PlayabilityParams,
};
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 4(b,c)", preset);
    let (small, large) = match preset {
        Preset::Quick => (
            PlayabilityParams::quick_5mb(),
            PlayabilityParams::quick_large(),
        ),
        Preset::Paper => (
            PlayabilityParams::paper_5mb(),
            PlayabilityParams::paper_large(),
        ),
    };
    let out = metrics_out_from_args();
    // Only the small panel writes series (the panels share series names
    // and a series must keep a single writer).
    let handle = metrics_handle(out.as_deref(), FIG4BC_SEED);
    let small_curve = run_playability_with(&small, None, &handle, FIG4BC_SEED);
    playability_table(
        "Figure 4(b): Playable % vs downloaded % — 5 MB file, rarest-first",
        &small_curve,
        None,
    )
    .print();
    let large_curve =
        run_playability_with(&large, None, &MetricsHandle::disabled(), FIG4BC_SEED + 1);
    playability_table(
        "Figure 4(c): Playable % vs downloaded % — large file, rarest-first",
        &large_curve,
        None,
    )
    .print();
    if let Some(dir) = &out {
        dump_metrics(dir, "fig4bc", &handle);
    }
}
