//! Regenerates paper Figure 3(c): downloaded size vs time for the four
//! {mobility} x {uploading} arms.

use p2p_simulation::experiments::fig3::{fig3c_table, run_fig3c_with, Fig3cParams, FIG3C_SEED};
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 3(c)", preset);
    let params = match preset {
        Preset::Quick => Fig3cParams::quick(),
        Preset::Paper => Fig3cParams::paper(),
    };
    let out = metrics_out_from_args();
    let handle = metrics_handle(out.as_deref(), FIG3C_SEED);
    let results = run_fig3c_with(&params, &handle, FIG3C_SEED);
    fig3c_table(&results, 10).print();
    if let Some(dir) = &out {
        dump_metrics(dir, "fig3c", &handle);
    }
}
