//! Regenerates paper Figure 3(c): downloaded size vs time for the four
//! {mobility} x {uploading} arms.

use p2p_simulation::experiments::fig3::{fig3c_table, run_fig3c, Fig3cParams};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 3(c)", preset);
    let params = match preset {
        Preset::Quick => Fig3cParams::quick(),
        Preset::Paper => Fig3cParams::paper(),
    };
    let results = run_fig3c(&params, 0x3C);
    fig3c_table(&results, 10).print();
}
