//! Regenerates paper Figure 9(a, b): playable fraction vs downloaded
//! fraction, default rarest-first vs wP2P mobility-aware fetching.

use metrics::handle::MetricsHandle;
use p2p_simulation::experiments::fig9::{fig9ab_table, run_fig9ab_with, FIG9AB_SEED};
use p2p_simulation::experiments::playability::PlayabilityParams;
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 9(a,b)", preset);
    let (small, large) = match preset {
        Preset::Quick => (
            PlayabilityParams::quick_5mb(),
            PlayabilityParams::quick_large(),
        ),
        Preset::Paper => (
            PlayabilityParams::paper_5mb(),
            PlayabilityParams::paper_large(),
        ),
    };
    let out = metrics_out_from_args();
    // Only panel (a) writes series (the panels share series names and a
    // series must keep a single writer).
    let handle = metrics_handle(out.as_deref(), FIG9AB_SEED);
    let r = run_fig9ab_with(&small, &handle, FIG9AB_SEED);
    fig9ab_table("Figure 9(a): Playable % vs downloaded % — 5 MB file", &r).print();
    let r = run_fig9ab_with(&large, &MetricsHandle::disabled(), FIG9AB_SEED + 1);
    fig9ab_table("Figure 9(b): Playable % vs downloaded % — large file", &r).print();
    if let Some(dir) = &out {
        dump_metrics(dir, "fig9ab", &handle);
    }
}
