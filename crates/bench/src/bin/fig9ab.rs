//! Regenerates paper Figure 9(a, b): playable fraction vs downloaded
//! fraction, default rarest-first vs wP2P mobility-aware fetching.

use p2p_simulation::experiments::fig9::{fig9ab_table, run_fig9ab};
use p2p_simulation::experiments::playability::PlayabilityParams;
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 9(a,b)", preset);
    let (small, large) = match preset {
        Preset::Quick => (
            PlayabilityParams::quick_5mb(),
            PlayabilityParams::quick_large(),
        ),
        Preset::Paper => (
            PlayabilityParams::paper_5mb(),
            PlayabilityParams::paper_large(),
        ),
    };
    let r = run_fig9ab(&small, 0x9A);
    fig9ab_table(
        "Figure 9(a): Playable % vs downloaded % — 5 MB file",
        &r,
    )
    .print();
    let r = run_fig9ab(&large, 0x9B);
    fig9ab_table(
        "Figure 9(b): Playable % vs downloaded % — large file",
        &r,
    )
    .print();
}
