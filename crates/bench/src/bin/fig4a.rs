//! Regenerates paper Figure 4(a): fixed-peer throughput vs server
//! mobility rate, one-mobile vs all-mobile.

use p2p_simulation::experiments::fig4::{fig4a_table, run_fig4a_with, Fig4aParams, FIG4A_SEED};
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 4(a)", preset);
    let params = match preset {
        Preset::Quick => Fig4aParams::quick(),
        Preset::Paper => Fig4aParams::paper(),
    };
    let out = metrics_out_from_args();
    let handle = metrics_handle(out.as_deref(), FIG4A_SEED);
    let points = run_fig4a_with(&params, &handle, FIG4A_SEED);
    fig4a_table(&points).print();
    if let Some(dir) = &out {
        dump_metrics(dir, "fig4a", &handle);
    }
}
