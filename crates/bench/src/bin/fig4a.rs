//! Regenerates paper Figure 4(a): fixed-peer throughput vs server
//! mobility rate, one-mobile vs all-mobile.

use p2p_simulation::experiments::fig4::{fig4a_table, run_fig4a, Fig4aParams};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 4(a)", preset);
    let params = match preset {
        Preset::Quick => Fig4aParams::quick(),
        Preset::Paper => Fig4aParams::paper(),
    };
    let points = run_fig4a(&params);
    fig4a_table(&points).print();
}
