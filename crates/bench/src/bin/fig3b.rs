//! Regenerates paper Figure 3(b): aggregate download rate vs upload limit
//! on a wireless shared channel (rises then falls).

use p2p_simulation::experiments::fig3::{fig3ab_table, run_fig3b_with, Fig3abParams, FIG3AB_SEED};
use wp2p_bench::{
    dump_metrics, metrics_handle, metrics_out_from_args, preamble, preset_from_args, Preset,
};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 3(b)", preset);
    let params = match preset {
        Preset::Quick => Fig3abParams::quick(),
        Preset::Paper => Fig3abParams::paper(),
    };
    let out = metrics_out_from_args();
    let handle = metrics_handle(out.as_deref(), FIG3AB_SEED);
    let points = run_fig3b_with(&params, &handle, FIG3AB_SEED);
    fig3ab_table(
        "Figure 3(b): Aggregate download (KBps) vs upload limit — wireless",
        &points,
        "paper: rises, peaks well below the top, then falls (self-contention)",
    )
    .print();
    if let Some(dir) = &out {
        dump_metrics(dir, "fig3b", &handle);
    }
}
