//! Regenerates paper Figure 3(b): aggregate download rate vs upload limit
//! on a wireless shared channel (rises then falls).

use p2p_simulation::experiments::fig3::{fig3ab_table, run_fig3b, Fig3abParams};
use wp2p_bench::{preamble, preset_from_args, Preset};

fn main() {
    let preset = preset_from_args();
    preamble("Figure 3(b)", preset);
    let params = match preset {
        Preset::Quick => Fig3abParams::quick(),
        Preset::Paper => Fig3abParams::paper(),
    };
    let points = run_fig3b(&params);
    fig3ab_table(
        "Figure 3(b): Aggregate download (KBps) vs upload limit — wireless",
        &points,
        "paper: rises, peaks well below the top, then falls (self-contention)",
    )
    .print();
}
