//! # wp2p-bench — figure regeneration and micro-benchmarks
//!
//! Each `fig*` binary regenerates one figure of the paper: it runs the
//! matching experiment driver from `p2p-simulation::experiments` and
//! prints the same rows/series the paper plots. By default the binaries
//! run a CI-sized `quick` preset; pass `--paper` for the full-scale
//! parameters (slow).
//!
//! The Criterion benches (in `benches/`) measure the hot substrate paths:
//! bencode, SHA-1, the event queue, piece pickers, the choker, TCP
//! reassembly, and max-min rate allocation.

/// Which parameter preset a figure binary should run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Preset {
    /// CI-sized: seconds of wall clock.
    Quick,
    /// The paper's scale: minutes of wall clock.
    Paper,
}

/// Parses the preset from the process arguments (`--paper` selects
/// [`Preset::Paper`]; anything else, or nothing, selects `Quick`).
pub fn preset_from_args() -> Preset {
    if std::env::args().any(|a| a == "--paper") {
        Preset::Paper
    } else {
        Preset::Quick
    }
}

/// Prints the standard preamble for a figure binary.
pub fn preamble(figure: &str, preset: Preset) {
    println!(
        "# {figure} — preset: {} (pass --paper for full scale)",
        match preset {
            Preset::Quick => "quick",
            Preset::Paper => "paper",
        }
    );
}
