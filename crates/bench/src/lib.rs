//! # wp2p-bench — figure regeneration and micro-benchmarks
//!
//! Each `fig*` binary regenerates one figure of the paper: it runs the
//! matching experiment driver from `p2p-simulation::experiments` and
//! prints the same rows/series the paper plots. By default the binaries
//! run a CI-sized `quick` preset; pass `--paper` for the full-scale
//! parameters (slow).
//!
//! The Criterion benches (in `benches/`) measure the hot substrate paths:
//! bencode, SHA-1, the event queue, piece pickers, the choker, TCP
//! reassembly, and max-min rate allocation.
//!
//! Every figure binary (and `all_figures`) also accepts
//! `--metrics-out <dir>`: the run's probe world is wired into a live
//! [`MetricsHandle`] and its deterministic JSON/CSV dumps land in the
//! directory as `<figure>.metrics.json` / `<figure>.series.csv`.

use metrics::handle::MetricsHandle;
use std::path::{Path, PathBuf};

/// Which parameter preset a figure binary should run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Preset {
    /// CI-sized: seconds of wall clock.
    Quick,
    /// The paper's scale: minutes of wall clock.
    Paper,
}

/// Parses the preset from the process arguments (`--paper` selects
/// [`Preset::Paper`]; anything else, or nothing, selects `Quick`).
pub fn preset_from_args() -> Preset {
    if std::env::args().any(|a| a == "--paper") {
        Preset::Paper
    } else {
        Preset::Quick
    }
}

/// Prints the standard preamble for a figure binary.
pub fn preamble(figure: &str, preset: Preset) {
    println!(
        "# {figure} — preset: {} (pass --paper for full scale)",
        match preset {
            Preset::Quick => "quick",
            Preset::Paper => "paper",
        }
    );
}

/// Parses `--metrics-out <dir>` from the process arguments.
pub fn metrics_out_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// The handle a figure run should use: live (recording under `seed`)
/// when a `--metrics-out` directory was requested, inert otherwise.
pub fn metrics_handle(out: Option<&Path>, seed: u64) -> MetricsHandle {
    match out {
        Some(_) => MetricsHandle::enabled(seed),
        None => MetricsHandle::disabled(),
    }
}

/// Writes `<dir>/<name>.metrics.json` and `<dir>/<name>.series.csv` from
/// an enabled handle (no-op on a disabled one). Both dumps are
/// deterministic for a given seed, whatever the worker count.
pub fn dump_metrics(dir: &Path, name: &str, handle: &MetricsHandle) {
    if !handle.is_enabled() {
        return;
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("could not create {}: {e}", dir.display());
        return;
    }
    let json_path = dir.join(format!("{name}.metrics.json"));
    let csv_path = dir.join(format!("{name}.series.csv"));
    for (path, content) in [
        (&json_path, handle.to_json()),
        (&csv_path, handle.series_csv()),
    ] {
        match std::fs::write(path, content) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}
