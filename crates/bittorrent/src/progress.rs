//! Piece/block download bookkeeping.
//!
//! Pieces are subdivided into 16 KB blocks, the request/transfer unit.
//! [`TorrentProgress`] tracks which blocks have arrived, which are in
//! flight to which connection, piece completion, and supports request
//! timeout/requeue, per-connection cancellation (a mobile peer vanishing),
//! and endgame duplication.

use crate::bitfield::Bitfield;
use crate::wire::{BlockRef, BLOCK_SIZE};
use simnet::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Connection key type (matches `choker::ConnKey`).
pub type ConnKey = u64;

#[derive(Debug, Clone)]
struct PartialPiece {
    /// Per-block received flags.
    received: Vec<bool>,
    received_count: u32,
    /// Outstanding requests per block: connections asked and when.
    in_flight: HashMap<u32, Vec<(ConnKey, SimTime)>>,
}

/// Outcome of an arriving block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockOutcome {
    /// New data; `completed_piece` is set when it finished its piece.
    Progress {
        /// The piece this block completed, if any.
        completed_piece: Option<u32>,
    },
    /// The block had already been received (endgame duplicate).
    Duplicate,
}

/// Download-state bookkeeping for one torrent.
#[derive(Debug, Clone)]
pub struct TorrentProgress {
    piece_length: u32,
    length: u64,
    num_pieces: u32,
    block_size: u32,
    have: Bitfield,
    partial: BTreeMap<u32, PartialPiece>,
    bytes_have: u64,
    /// Allow duplicate in-flight requests per block in endgame, capped.
    endgame_dup_cap: usize,
}

impl TorrentProgress {
    /// Creates empty progress for a torrent of `length` bytes in pieces of
    /// `piece_length`.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes.
    pub fn new(piece_length: u32, length: u64) -> Self {
        Self::with_block_size(piece_length, length, BLOCK_SIZE.min(piece_length))
    }

    /// As [`TorrentProgress::new`] with a custom block size (tests).
    ///
    /// # Panics
    ///
    /// Panics on zero sizes or `block_size > piece_length`.
    pub fn with_block_size(piece_length: u32, length: u64, block_size: u32) -> Self {
        assert!(piece_length > 0 && length > 0 && block_size > 0);
        assert!(block_size <= piece_length, "block larger than piece");
        let num_pieces = length.div_ceil(piece_length as u64) as u32;
        TorrentProgress {
            piece_length,
            length,
            num_pieces,
            block_size,
            have: Bitfield::new(num_pieces),
            partial: BTreeMap::new(),
            bytes_have: 0,
            endgame_dup_cap: 2,
        }
    }

    /// Progress for a peer that already has the whole file (a seed).
    pub fn complete(piece_length: u32, length: u64) -> Self {
        let mut p = Self::new(piece_length, length);
        p.have = Bitfield::full(p.num_pieces);
        p.bytes_have = length;
        p
    }

    /// Number of pieces.
    pub fn num_pieces(&self) -> u32 {
        self.num_pieces
    }

    /// Piece length (bytes); the final piece may be shorter.
    pub fn piece_length(&self) -> u32 {
        self.piece_length
    }

    /// Total torrent length in bytes.
    pub fn length(&self) -> u64 {
        self.length
    }

    /// The verified-piece bitfield.
    pub fn have(&self) -> &Bitfield {
        &self.have
    }

    /// Bytes of completed pieces.
    pub fn bytes_downloaded(&self) -> u64 {
        self.bytes_have
    }

    /// Fraction of the torrent completed, in `[0, 1]`.
    pub fn downloaded_fraction(&self) -> f64 {
        self.bytes_have as f64 / self.length as f64
    }

    /// True when every piece is complete.
    pub fn is_complete(&self) -> bool {
        self.have.is_complete()
    }

    /// Size of piece `index` in bytes.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn piece_size(&self, index: u32) -> u32 {
        assert!(index < self.num_pieces, "piece {index} out of range");
        let start = index as u64 * self.piece_length as u64;
        let end = (start + self.piece_length as u64).min(self.length);
        (end - start) as u32
    }

    /// Number of blocks in piece `index`.
    pub fn blocks_in_piece(&self, index: u32) -> u32 {
        self.piece_size(index).div_ceil(self.block_size)
    }

    /// The `BlockRef` for block `block` of piece `index`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn block_ref(&self, index: u32, block: u32) -> BlockRef {
        let nblocks = self.blocks_in_piece(index);
        assert!(block < nblocks, "block {block} out of range");
        let offset = block * self.block_size;
        let len = (self.piece_size(index) - offset).min(self.block_size);
        BlockRef {
            piece: index,
            offset,
            len,
        }
    }

    fn partial_entry(&mut self, index: u32) -> &mut PartialPiece {
        let nblocks = self.blocks_in_piece(index) as usize;
        self.partial.entry(index).or_insert_with(|| PartialPiece {
            received: vec![false; nblocks],
            received_count: 0,
            in_flight: HashMap::new(),
        })
    }

    /// Pieces currently partially downloaded or requested (in progress),
    /// in ascending index order.
    pub fn partial_pieces(&self) -> impl Iterator<Item = u32> + '_ {
        self.partial.keys().copied()
    }

    /// True when every missing block of `index` already has at least one
    /// outstanding request.
    pub fn fully_requested(&self, index: u32) -> bool {
        if self.have.get(index) {
            return true;
        }
        match self.partial.get(&index) {
            None => false,
            Some(p) => (0..p.received.len() as u32)
                .all(|b| p.received[b as usize] || p.in_flight.contains_key(&b)),
        }
    }

    /// True when all missing blocks of the whole torrent are in flight —
    /// the endgame condition.
    pub fn in_endgame(&self) -> bool {
        self.have
            .iter_unset()
            .all(|piece| self.fully_requested(piece))
    }

    /// Picks up to `max` blocks of piece `index` to request on `conn`,
    /// marking them in flight. With `allow_duplicates` (endgame), blocks
    /// already in flight elsewhere may be re-requested up to the dup cap;
    /// the same connection is never asked twice for one block.
    pub fn take_blocks(
        &mut self,
        index: u32,
        conn: ConnKey,
        now: SimTime,
        max: usize,
        allow_duplicates: bool,
    ) -> Vec<BlockRef> {
        if max == 0 || self.have.get(index) {
            return Vec::new();
        }
        let dup_cap = self.endgame_dup_cap;
        let nblocks = self.blocks_in_piece(index);
        let entry = self.partial_entry(index);
        let mut out = Vec::new();
        for b in 0..nblocks {
            if out.len() >= max {
                break;
            }
            if entry.received[b as usize] {
                continue;
            }
            let flights = entry.in_flight.entry(b).or_default();
            let already_here = flights.iter().any(|(c, _)| *c == conn);
            if already_here {
                continue;
            }
            if !flights.is_empty() && (!allow_duplicates || flights.len() >= dup_cap) {
                continue;
            }
            flights.push((conn, now));
            out.push((index, b));
        }
        // Clean up empty vecs created for received blocks.
        let to_refs: Vec<BlockRef> = out.iter().map(|&(p, b)| self.block_ref(p, b)).collect();
        to_refs
    }

    /// Registers an arrived block from `conn`.
    ///
    /// Returns whether it made progress and (maybe) completed its piece.
    /// Unknown or out-of-range blocks count as duplicates.
    pub fn on_block(&mut self, block: BlockRef, _conn: ConnKey) -> BlockOutcome {
        if block.piece >= self.num_pieces || self.have.get(block.piece) {
            return BlockOutcome::Duplicate;
        }
        if !block.offset.is_multiple_of(self.block_size) {
            return BlockOutcome::Duplicate;
        }
        let b = block.offset / self.block_size;
        let nblocks = self.blocks_in_piece(block.piece);
        if b >= nblocks {
            return BlockOutcome::Duplicate;
        }
        let piece_size = self.piece_size(block.piece);
        let entry = self.partial_entry(block.piece);
        if entry.received[b as usize] {
            return BlockOutcome::Duplicate;
        }
        entry.received[b as usize] = true;
        entry.received_count += 1;
        entry.in_flight.remove(&b);
        if entry.received_count == nblocks {
            self.partial.remove(&block.piece);
            self.have.set(block.piece);
            self.bytes_have += piece_size as u64;
            BlockOutcome::Progress {
                completed_piece: Some(block.piece),
            }
        } else {
            BlockOutcome::Progress {
                completed_piece: None,
            }
        }
    }

    /// Other connections still waiting on `block` (for endgame `cancel`).
    pub fn other_requesters(&self, block: BlockRef, conn: ConnKey) -> Vec<ConnKey> {
        let b = block.offset / self.block_size;
        self.partial
            .get(&block.piece)
            .and_then(|p| p.in_flight.get(&b))
            .map(|v| v.iter().map(|(c, _)| *c).filter(|c| *c != conn).collect())
            .unwrap_or_default()
    }

    /// Drops all in-flight requests on `conn` (connection died); the blocks
    /// become requestable again.
    pub fn cancel_conn(&mut self, conn: ConnKey) -> usize {
        let mut freed = 0;
        for p in self.partial.values_mut() {
            p.in_flight.retain(|_, flights| {
                let before = flights.len();
                flights.retain(|(c, _)| *c != conn);
                freed += before - flights.len();
                !flights.is_empty()
            });
        }
        freed
    }

    /// Expires requests older than `timeout`, freeing their blocks.
    /// Returns `(conn, block)` pairs that timed out.
    pub fn expire_requests(
        &mut self,
        now: SimTime,
        timeout: SimDuration,
    ) -> Vec<(ConnKey, BlockRef)> {
        let mut expired = Vec::new();
        let block_size = self.block_size;
        let mut refs: Vec<(u32, u32, ConnKey)> = Vec::new();
        for (&piece, p) in &mut self.partial {
            p.in_flight.retain(|&b, flights| {
                flights.retain(|&(c, at)| {
                    if now.saturating_since(at) > timeout {
                        refs.push((piece, b, c));
                        false
                    } else {
                        true
                    }
                });
                !flights.is_empty()
            });
        }
        // `refs` accumulates in `in_flight`'s hash-map iteration order;
        // sort so the caller's requeue order is identical across runs and
        // across snapshot restores (which canonicalise map layouts).
        refs.sort_unstable();
        for (piece, b, c) in refs {
            let offset = b * block_size;
            // Reconstruct the ref without re-borrowing partials.
            let start = piece as u64 * self.piece_length as u64;
            let psize = ((start + self.piece_length as u64).min(self.length) - start) as u32;
            let len = (psize - offset).min(block_size);
            expired.push((c, BlockRef { piece, offset, len }));
        }
        expired
    }

    /// Marks a whole piece as already downloaded (scenario construction:
    /// e.g. giving two leeches complementary halves of a file).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn mark_piece_complete(&mut self, index: u32) {
        assert!(index < self.num_pieces, "piece {index} out of range");
        if !self.have.get(index) {
            self.have.set(index);
            self.bytes_have += self.piece_size(index) as u64;
            self.partial.remove(&index);
        }
    }

    /// Drops every in-flight request record. Call when resuming progress
    /// in a fresh client after task re-initiation: the old connection keys
    /// are meaningless and would otherwise pin blocks as requested forever.
    pub fn clear_in_flight(&mut self) {
        self.partial.retain(|_, p| {
            p.in_flight.clear();
            // Keep only pieces that actually hold received blocks.
            p.received_count > 0
        });
    }

    /// Count of blocks currently in flight (unique requests, duplicates
    /// counted individually).
    pub fn in_flight_total(&self) -> usize {
        self.partial
            .values()
            .flat_map(|p| p.in_flight.values())
            .map(|v| v.len())
            .sum()
    }
}

use simnet::snapshot::{snap_hash_map, unsnap_hash_map, Snap, SnapReader, SnapWriter};

impl Snap for PartialPiece {
    fn snap(&self, w: &mut SnapWriter) {
        self.received.snap(w);
        w.put_u32(self.received_count);
        snap_hash_map(&self.in_flight, w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        PartialPiece {
            received: Snap::unsnap(r),
            received_count: r.get_u32(),
            in_flight: unsnap_hash_map(r),
        }
    }
}

impl Snap for TorrentProgress {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.piece_length);
        w.put_u64(self.length);
        w.put_u32(self.num_pieces);
        w.put_u32(self.block_size);
        self.have.snap(w);
        self.partial.snap(w);
        w.put_u64(self.bytes_have);
        w.put_usize(self.endgame_dup_cap);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        TorrentProgress {
            piece_length: r.get_u32(),
            length: r.get_u64(),
            num_pieces: r.get_u32(),
            block_size: r.get_u32(),
            have: Snap::unsnap(r),
            partial: Snap::unsnap(r),
            bytes_have: r.get_u64(),
            endgame_dup_cap: r.get_usize(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 pieces of 32 bytes (last short: 100 total), 16-byte blocks.
    fn progress() -> TorrentProgress {
        TorrentProgress::with_block_size(32, 100, 16)
    }

    #[test]
    fn geometry() {
        let p = progress();
        assert_eq!(p.num_pieces(), 4);
        assert_eq!(p.piece_size(0), 32);
        assert_eq!(p.piece_size(3), 4, "last piece short");
        assert_eq!(p.blocks_in_piece(0), 2);
        assert_eq!(p.blocks_in_piece(3), 1);
        assert_eq!(p.block_ref(3, 0).len, 4);
    }

    #[test]
    fn take_blocks_marks_in_flight() {
        let mut p = progress();
        let t = SimTime::ZERO;
        let blocks = p.take_blocks(0, 1, t, 10, false);
        assert_eq!(blocks.len(), 2);
        // Second connection gets nothing without endgame.
        assert!(p.take_blocks(0, 2, t, 10, false).is_empty());
        assert!(p.fully_requested(0));
        assert_eq!(p.in_flight_total(), 2);
    }

    #[test]
    fn blocks_complete_pieces() {
        let mut p = progress();
        let t = SimTime::ZERO;
        let blocks = p.take_blocks(0, 1, t, 10, false);
        let first = p.on_block(blocks[0], 1);
        assert_eq!(
            first,
            BlockOutcome::Progress {
                completed_piece: None
            }
        );
        let second = p.on_block(blocks[1], 1);
        assert_eq!(
            second,
            BlockOutcome::Progress {
                completed_piece: Some(0)
            }
        );
        assert!(p.have().get(0));
        assert_eq!(p.bytes_downloaded(), 32);
        assert!(!p.is_complete());
    }

    #[test]
    fn duplicates_are_flagged() {
        let mut p = progress();
        let t = SimTime::ZERO;
        let blocks = p.take_blocks(3, 1, t, 10, false);
        assert_eq!(
            p.on_block(blocks[0], 1),
            BlockOutcome::Progress {
                completed_piece: Some(3)
            }
        );
        assert_eq!(p.on_block(blocks[0], 2), BlockOutcome::Duplicate);
        // Garbage refs are duplicates, not panics.
        assert_eq!(
            p.on_block(
                BlockRef {
                    piece: 99,
                    offset: 0,
                    len: 16
                },
                1
            ),
            BlockOutcome::Duplicate
        );
        assert_eq!(
            p.on_block(
                BlockRef {
                    piece: 0,
                    offset: 7,
                    len: 16
                },
                1
            ),
            BlockOutcome::Duplicate,
            "misaligned offset"
        );
    }

    #[test]
    fn endgame_allows_bounded_duplicates() {
        let mut p = progress();
        let t = SimTime::ZERO;
        let b1 = p.take_blocks(3, 1, t, 10, false);
        assert_eq!(b1.len(), 1);
        // Endgame: another conn may duplicate, up to the cap of 2 total.
        let b2 = p.take_blocks(3, 2, t, 10, true);
        assert_eq!(b2, b1);
        let b3 = p.take_blocks(3, 3, t, 10, true);
        assert!(b3.is_empty(), "dup cap reached");
        // Same conn never duplicates its own request.
        let again = p.take_blocks(3, 1, t, 10, true);
        assert!(again.is_empty());
        // Completion reports the other requester for cancelling.
        let others = p.other_requesters(b1[0], 1);
        assert_eq!(others, vec![2]);
    }

    #[test]
    fn endgame_detection() {
        let mut p = progress();
        let t = SimTime::ZERO;
        assert!(!p.in_endgame());
        for piece in 0..4 {
            p.take_blocks(piece, 1, t, 10, false);
        }
        assert!(p.in_endgame());
    }

    #[test]
    fn cancel_conn_requeues_blocks() {
        let mut p = progress();
        let t = SimTime::ZERO;
        p.take_blocks(0, 1, t, 10, false);
        assert!(p.fully_requested(0));
        let freed = p.cancel_conn(1);
        assert_eq!(freed, 2);
        assert!(!p.fully_requested(0));
        // Another connection can now request them.
        assert_eq!(p.take_blocks(0, 2, t, 10, false).len(), 2);
    }

    #[test]
    fn request_timeout_frees_blocks() {
        let mut p = progress();
        p.take_blocks(0, 1, SimTime::ZERO, 10, false);
        let expired = p.expire_requests(SimTime::from_secs(100), SimDuration::from_secs(60));
        assert_eq!(expired.len(), 2);
        assert!(expired.iter().all(|(c, _)| *c == 1));
        assert!(!p.fully_requested(0));
        // Requests inside the window survive.
        p.take_blocks(0, 2, SimTime::from_secs(100), 1, false);
        let expired = p.expire_requests(SimTime::from_secs(130), SimDuration::from_secs(60));
        assert!(expired.is_empty());
    }

    #[test]
    fn seed_progress_is_complete() {
        let p = TorrentProgress::complete(32, 100);
        assert!(p.is_complete());
        assert_eq!(p.bytes_downloaded(), 100);
        assert_eq!(p.downloaded_fraction(), 1.0);
    }

    #[test]
    fn take_blocks_respects_max() {
        let mut p = TorrentProgress::with_block_size(64, 64, 16);
        let got = p.take_blocks(0, 1, SimTime::ZERO, 3, false);
        assert_eq!(got.len(), 3);
        let rest = p.take_blocks(0, 1, SimTime::ZERO, 10, false);
        assert_eq!(rest.len(), 1, "remaining block of 4");
    }
}
