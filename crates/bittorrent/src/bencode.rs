//! Bencode encoding and decoding (BEP 3).
//!
//! Bencode is the serialization used by `.torrent` metainfo files and
//! tracker responses: byte strings (`4:spam`), integers (`i42e`), lists
//! (`l...e`), and dictionaries (`d...e`, keys sorted).
//!
//! The decoder is strict: it rejects leading zeros, negative zero,
//! unsorted or duplicate dictionary keys, and trailing garbage — the
//! canonical-form property that makes info-hashes well defined.

use std::collections::BTreeMap;
use std::fmt;

/// A bencoded value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// An integer (`i...e`).
    Int(i64),
    /// A byte string (`<len>:<bytes>`); not necessarily UTF-8.
    Bytes(Vec<u8>),
    /// A list (`l...e`).
    List(Vec<Value>),
    /// A dictionary (`d...e`) with byte-string keys in sorted order.
    Dict(BTreeMap<Vec<u8>, Value>),
}

/// Error produced when decoding malformed bencode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A byte that cannot start or continue a value at this position.
    UnexpectedByte {
        /// Offset of the offending byte.
        at: usize,
        /// The byte found.
        byte: u8,
    },
    /// Integer with a leading zero, lone `-`, or `-0`.
    InvalidInt {
        /// Offset where the integer starts.
        at: usize,
    },
    /// Integer does not fit in `i64`.
    IntOverflow {
        /// Offset where the integer starts.
        at: usize,
    },
    /// String length prefix is malformed or overflows.
    InvalidLength {
        /// Offset where the length starts.
        at: usize,
    },
    /// Dictionary keys out of order or duplicated.
    UnsortedKeys {
        /// Offset of the offending key.
        at: usize,
    },
    /// Value decoded, but input bytes remain.
    TrailingData {
        /// Offset of the first trailing byte.
        at: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::UnexpectedByte { at, byte } => {
                write!(f, "unexpected byte {byte:#04x} at offset {at}")
            }
            DecodeError::InvalidInt { at } => write!(f, "invalid integer at offset {at}"),
            DecodeError::IntOverflow { at } => write!(f, "integer overflow at offset {at}"),
            DecodeError::InvalidLength { at } => {
                write!(f, "invalid string length at offset {at}")
            }
            DecodeError::UnsortedKeys { at } => {
                write!(f, "dictionary keys unsorted or duplicated at offset {at}")
            }
            DecodeError::TrailingData { at } => {
                write!(f, "trailing data after value at offset {at}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl Value {
    /// Convenience constructor for a byte-string value.
    pub fn bytes(b: impl Into<Vec<u8>>) -> Value {
        Value::Bytes(b.into())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: &str) -> Value {
        Value::Bytes(s.as_bytes().to_vec())
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The bytes inside, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The bytes as UTF-8, if this is a `Bytes` holding valid UTF-8.
    pub fn as_str(&self) -> Option<&str> {
        self.as_bytes().and_then(|b| std::str::from_utf8(b).ok())
    }

    /// The list inside, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// The dictionary inside, if this is a `Dict`.
    pub fn as_dict(&self) -> Option<&BTreeMap<Vec<u8>, Value>> {
        match self {
            Value::Dict(d) => Some(d),
            _ => None,
        }
    }

    /// Looks up a dictionary entry by string key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_dict().and_then(|d| d.get(key.as_bytes()))
    }

    /// Encodes to bencode bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encodes, appending to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(b'i');
                out.extend_from_slice(i.to_string().as_bytes());
                out.push(b'e');
            }
            Value::Bytes(b) => {
                out.extend_from_slice(b.len().to_string().as_bytes());
                out.push(b':');
                out.extend_from_slice(b);
            }
            Value::List(items) => {
                out.push(b'l');
                for item in items {
                    item.encode_into(out);
                }
                out.push(b'e');
            }
            Value::Dict(map) => {
                out.push(b'd');
                for (k, v) in map {
                    out.extend_from_slice(k.len().to_string().as_bytes());
                    out.push(b':');
                    out.extend_from_slice(k);
                    v.encode_into(out);
                }
                out.push(b'e');
            }
        }
    }

    /// Decodes a complete bencoded value; rejects trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] describing the first malformation found.
    pub fn decode(input: &[u8]) -> Result<Value, DecodeError> {
        let mut parser = Parser { input, pos: 0 };
        let v = parser.parse_value()?;
        if parser.pos != input.len() {
            return Err(DecodeError::TrailingData { at: parser.pos });
        }
        Ok(v)
    }

    /// Decodes a value from the front of `input`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] describing the first malformation found.
    pub fn decode_prefix(input: &[u8]) -> Result<(Value, usize), DecodeError> {
        let mut parser = Parser { input, pos: 0 };
        let v = parser.parse_value()?;
        Ok((v, parser.pos))
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Result<u8, DecodeError> {
        self.input
            .get(self.pos)
            .copied()
            .ok_or(DecodeError::UnexpectedEnd)
    }

    fn bump(&mut self) -> Result<u8, DecodeError> {
        let b = self.peek()?;
        self.pos += 1;
        Ok(b)
    }

    fn parse_value(&mut self) -> Result<Value, DecodeError> {
        match self.peek()? {
            b'i' => self.parse_int(),
            b'l' => self.parse_list(),
            b'd' => self.parse_dict(),
            b'0'..=b'9' => Ok(Value::Bytes(self.parse_bytes()?)),
            byte => Err(DecodeError::UnexpectedByte { at: self.pos, byte }),
        }
    }

    fn parse_int(&mut self) -> Result<Value, DecodeError> {
        let start = self.pos;
        self.bump()?; // 'i'
        let negative = if self.peek()? == b'-' {
            self.bump()?;
            true
        } else {
            false
        };
        let digits_start = self.pos;
        let mut value: i64 = 0;
        loop {
            match self.bump()? {
                b'e' => break,
                d @ b'0'..=b'9' => {
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add((d - b'0') as i64))
                        .ok_or(DecodeError::IntOverflow { at: start })?;
                }
                _ => return Err(DecodeError::InvalidInt { at: start }),
            }
        }
        let ndigits = self.pos - 1 - digits_start;
        if ndigits == 0 {
            return Err(DecodeError::InvalidInt { at: start });
        }
        // Canonical form: no leading zeros (except "0" itself), no "-0".
        if self.input[digits_start] == b'0' && (ndigits > 1 || negative) {
            return Err(DecodeError::InvalidInt { at: start });
        }
        Ok(Value::Int(if negative { -value } else { value }))
    }

    fn parse_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let start = self.pos;
        let mut len: usize = 0;
        let mut ndigits = 0;
        loop {
            match self.bump()? {
                b':' => break,
                d @ b'0'..=b'9' => {
                    len = len
                        .checked_mul(10)
                        .and_then(|v| v.checked_add((d - b'0') as usize))
                        .ok_or(DecodeError::InvalidLength { at: start })?;
                    ndigits += 1;
                }
                _ => return Err(DecodeError::InvalidLength { at: start }),
            }
        }
        if ndigits == 0 || (self.input[start] == b'0' && ndigits > 1) {
            return Err(DecodeError::InvalidLength { at: start });
        }
        if self.pos + len > self.input.len() {
            return Err(DecodeError::UnexpectedEnd);
        }
        let bytes = self.input[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(bytes)
    }

    fn parse_list(&mut self) -> Result<Value, DecodeError> {
        self.bump()?; // 'l'
        let mut items = Vec::new();
        while self.peek()? != b'e' {
            items.push(self.parse_value()?);
        }
        self.bump()?; // 'e'
        Ok(Value::List(items))
    }

    fn parse_dict(&mut self) -> Result<Value, DecodeError> {
        self.bump()?; // 'd'
        let mut map = BTreeMap::new();
        let mut last_key: Option<Vec<u8>> = None;
        while self.peek()? != b'e' {
            let key_at = self.pos;
            let key = self.parse_bytes()?;
            if let Some(prev) = &last_key {
                if *prev >= key {
                    return Err(DecodeError::UnsortedKeys { at: key_at });
                }
            }
            let value = self.parse_value()?;
            last_key = Some(key.clone());
            map.insert(key, value);
        }
        self.bump()?; // 'e'
        Ok(Value::Dict(map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let enc = v.encode();
        let dec = Value::decode(&enc).expect("decode what we encoded");
        assert_eq!(&dec, v);
    }

    #[test]
    fn encodes_primitives() {
        assert_eq!(Value::Int(42).encode(), b"i42e");
        assert_eq!(Value::Int(-7).encode(), b"i-7e");
        assert_eq!(Value::Int(0).encode(), b"i0e");
        assert_eq!(Value::str("spam").encode(), b"4:spam");
        assert_eq!(Value::bytes(vec![]).encode(), b"0:");
    }

    #[test]
    fn encodes_compounds() {
        let list = Value::List(vec![Value::str("a"), Value::Int(1)]);
        assert_eq!(list.encode(), b"l1:ai1ee");
        let mut d = BTreeMap::new();
        d.insert(b"cow".to_vec(), Value::str("moo"));
        d.insert(b"spam".to_vec(), Value::str("eggs"));
        assert_eq!(Value::Dict(d).encode(), b"d3:cow3:moo4:spam4:eggse");
    }

    #[test]
    fn decodes_nested() {
        let v = Value::decode(b"d4:listli0e1:xee").unwrap();
        let list = v.get("list").unwrap().as_list().unwrap();
        assert_eq!(list[0].as_int(), Some(0));
        assert_eq!(list[1].as_str(), Some("x"));
    }

    #[test]
    fn roundtrips() {
        roundtrip(&Value::Int(i64::MAX));
        roundtrip(&Value::Int(i64::MIN + 1));
        roundtrip(&Value::bytes(vec![0u8, 255, 128]));
        let mut d = BTreeMap::new();
        d.insert(
            b"a".to_vec(),
            Value::List(vec![Value::Int(1), Value::str("two")]),
        );
        d.insert(b"b".to_vec(), Value::Dict(BTreeMap::new()));
        roundtrip(&Value::Dict(d));
    }

    #[test]
    fn rejects_leading_zero_int() {
        assert!(matches!(
            Value::decode(b"i03e"),
            Err(DecodeError::InvalidInt { .. })
        ));
        assert!(matches!(
            Value::decode(b"i-0e"),
            Err(DecodeError::InvalidInt { .. })
        ));
        assert!(Value::decode(b"i0e").is_ok());
    }

    #[test]
    fn rejects_empty_int() {
        assert!(matches!(
            Value::decode(b"ie"),
            Err(DecodeError::InvalidInt { .. })
        ));
        assert!(matches!(
            Value::decode(b"i-e"),
            Err(DecodeError::InvalidInt { .. })
        ));
    }

    #[test]
    fn rejects_overflow() {
        assert!(matches!(
            Value::decode(b"i99999999999999999999e"),
            Err(DecodeError::IntOverflow { .. })
        ));
    }

    #[test]
    fn rejects_truncated_string() {
        assert_eq!(Value::decode(b"5:spam"), Err(DecodeError::UnexpectedEnd));
        assert!(matches!(
            Value::decode(b"05:spamX"),
            Err(DecodeError::InvalidLength { .. })
        ));
    }

    #[test]
    fn rejects_unsorted_or_duplicate_keys() {
        assert!(matches!(
            Value::decode(b"d4:spam4:eggs3:cow3:mooe"),
            Err(DecodeError::UnsortedKeys { .. })
        ));
        assert!(matches!(
            Value::decode(b"d1:a1:x1:a1:ye"),
            Err(DecodeError::UnsortedKeys { .. })
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(matches!(
            Value::decode(b"i1eX"),
            Err(DecodeError::TrailingData { .. })
        ));
        // decode_prefix tolerates it and reports the consumed length.
        let (v, used) = Value::decode_prefix(b"i1eX").unwrap();
        assert_eq!(v, Value::Int(1));
        assert_eq!(used, 3);
    }

    #[test]
    fn rejects_unexpected_start() {
        assert!(matches!(
            Value::decode(b"x"),
            Err(DecodeError::UnexpectedByte { .. })
        ));
        assert_eq!(Value::decode(b""), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn error_display_is_informative() {
        let err = Value::decode(b"i03e").unwrap_err();
        assert!(err.to_string().contains("invalid integer"));
    }
}
