//! Connection-lifecycle resilience: backoff policies, keepalive/snub
//! timeouts, and the per-peer connection state machine.
//!
//! The paper's mobile hosts disconnect and come back — hand-offs,
//! address churn, lossy links — so reconnection is a modelled process,
//! not an instantaneous retry. This module centralises the knobs:
//!
//! * [`BackoffPolicy`] — capped exponential backoff with deterministic
//!   multiplicative jitter, seeded from [`simnet::rng::SimRng`]. The
//!   same seed always produces the same schedule, and a policy with
//!   `jitter == 0.0` draws nothing from the RNG at all, so arming a
//!   zero-jitter policy cannot perturb any other seeded stream.
//! * [`ResilienceConfig`] — the typed bundle of dial backoff, announce
//!   backoff, keepalive and snub timeouts the client and both
//!   simulation worlds consume. The default is **unarmed**: every field
//!   reproduces the legacy fixed-retry behaviour byte-for-byte.
//! * [`ConnState`] — the lifecycle a resilient connection moves
//!   through: connecting → established → snubbed → backing-off →
//!   reconnecting → dead.

use simnet::rng::SimRng;
use simnet::time::SimDuration;

/// Capped exponential backoff with deterministic multiplicative jitter.
///
/// Attempt `n` (0-based) waits `min(base · 2ⁿ, cap)`, scaled by a
/// uniform factor from `[1 − jitter, 1 + jitter]`. With `jitter == 0.0`
/// the RNG is untouched ([`SimRng::jitter`] short-circuits), so the
/// schedule is a pure function of `(base, cap, attempt)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackoffPolicy {
    /// Delay of the first retry (attempt 0).
    pub base: SimDuration,
    /// Upper bound the exponential is clamped to.
    pub cap: SimDuration,
    /// Multiplicative jitter spread in `[0, 1]`; `0.0` draws nothing.
    pub jitter: f64,
}

impl BackoffPolicy {
    /// A fixed-delay policy: every attempt waits exactly `delay`.
    pub fn fixed(delay: SimDuration) -> Self {
        BackoffPolicy {
            base: delay,
            cap: delay,
            jitter: 0.0,
        }
    }

    /// Exponential policy without jitter.
    pub fn exponential(base: SimDuration, cap: SimDuration) -> Self {
        BackoffPolicy {
            base,
            cap,
            jitter: 0.0,
        }
    }

    /// Sets the jitter spread (builder style).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// The delay before retry number `attempt` (0-based). Draws one
    /// jitter sample from `rng` unless `jitter == 0.0`.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let exp = self.base.saturating_mul(1u64 << attempt.min(30));
        let clamped = if exp > self.cap { self.cap } else { exp };
        if self.jitter == 0.0 {
            return clamped;
        }
        SimDuration::from_secs_f64(rng.jitter(clamped.as_secs_f64(), self.jitter))
    }
}

/// Lifecycle of a resilient peer connection.
///
/// ```text
///           dial                handshake
/// (new) ──────────► Connecting ───────────► Established
///                       │   ▲                 │      │ no piece
///                  fail │   │ retry timer     │      │ progress
///                       ▼   │                 │      ▼
///          Dead ◄── BackingOff ◄──────────────┤   Snubbed
///        (attempts      ▲      close/stall    │      │ piece
///        exhausted)     └─────────────────────┴──────┘ arrives
///                            Reconnecting = Connecting with attempt > 0
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Dial issued, handshake not yet complete (attempt 0).
    Connecting,
    /// Handshake complete, peer making progress.
    Established,
    /// Established but no piece progress for the snub timeout.
    Snubbed,
    /// Closed or failed; waiting out a backoff delay before redial.
    BackingOff,
    /// Re-dial after backoff (attempt > 0).
    Reconnecting,
    /// Retry budget exhausted; no further dials.
    Dead,
}

/// Typed resilience knobs consumed by the client and both simulation
/// worlds. [`Default`] is **unarmed**: the legacy fixed-retry constants,
/// zero jitter, no keepalive/snub machinery — byte-identical behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResilienceConfig {
    /// Master switch. Unarmed keeps the legacy lifecycle (fixed dial
    /// backoff doubling, fast announce retry, no keepalive/snub).
    pub armed: bool,
    /// Peer-dial retry schedule (armed mode).
    pub dial: BackoffPolicy,
    /// Tracker-announce retry schedule during outages.
    pub announce: BackoffPolicy,
    /// Dials per address before the connection is declared [`ConnState::Dead`].
    pub max_dial_attempts: u32,
    /// Established connection with no piece progress for this long is
    /// snubbed (its in-flight requests requeued, no new requests).
    pub snub_timeout: SimDuration,
    /// Idle send interval: a keepalive goes out when nothing else was
    /// sent for this long.
    pub keepalive_interval: SimDuration,
    /// A peer silent (no messages at all) for this long is closed into
    /// backing-off.
    pub keepalive_timeout: SimDuration,
    /// Jitter spread applied to tracker re-announce intervals.
    pub reannounce_jitter: f64,
    /// Announce circuit breaker: after this many *consecutive* announce
    /// failures the client stops climbing the backoff ladder and parks
    /// the next announce a full `breaker_cooloff` away — a dark shard is
    /// probed, not hammered. `0` disables the breaker (legacy retries).
    pub breaker_threshold: u32,
    /// How long an open breaker waits before the next probe announce.
    pub breaker_cooloff: SimDuration,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            armed: false,
            // Mirrors the legacy dial schedule: 30 s doubling, capped at
            // 30 s · 2⁴ = 480 s.
            dial: BackoffPolicy::exponential(
                SimDuration::from_secs(30),
                SimDuration::from_secs(480),
            ),
            // Mirrors the legacy fixed 60 s outage retry at attempt 0.
            announce: BackoffPolicy::exponential(
                SimDuration::from_secs(60),
                SimDuration::from_secs(240),
            ),
            max_dial_attempts: u32::MAX,
            snub_timeout: SimDuration::from_secs(120),
            keepalive_interval: SimDuration::from_secs(60),
            keepalive_timeout: SimDuration::from_secs(150),
            reannounce_jitter: 0.0,
            breaker_threshold: 0,
            breaker_cooloff: SimDuration::from_secs(300),
        }
    }
}

impl ResilienceConfig {
    /// The armed preset: exponential dial/announce backoff with 10%
    /// jitter, a finite retry budget, keepalive and snub detection on.
    pub fn armed() -> Self {
        ResilienceConfig {
            armed: true,
            dial: BackoffPolicy::exponential(
                SimDuration::from_secs(30),
                SimDuration::from_secs(480),
            )
            .with_jitter(0.1),
            announce: BackoffPolicy::exponential(
                SimDuration::from_secs(60),
                SimDuration::from_secs(240),
            )
            .with_jitter(0.1),
            max_dial_attempts: 8,
            reannounce_jitter: 0.1,
            ..ResilienceConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = BackoffPolicy::exponential(SimDuration::from_secs(30), SimDuration::from_secs(480));
        let mut rng = SimRng::new(1);
        let delays: Vec<u64> = (0..8).map(|a| p.delay(a, &mut rng).as_micros()).collect();
        let secs: Vec<u64> = delays.iter().map(|d| d / 1_000_000).collect();
        assert_eq!(secs, vec![30, 60, 120, 240, 480, 480, 480, 480]);
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let p = BackoffPolicy::exponential(SimDuration::from_secs(30), SimDuration::from_secs(480));
        let mut rng = SimRng::new(1);
        assert_eq!(p.delay(u32::MAX, &mut rng), SimDuration::from_secs(480));
    }

    #[test]
    fn zero_jitter_leaves_rng_untouched() {
        let p = BackoffPolicy::exponential(SimDuration::from_secs(30), SimDuration::from_secs(480));
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for attempt in 0..6 {
            p.delay(attempt, &mut a);
        }
        assert_eq!(a.next_u64(), b.next_u64(), "zero jitter must not draw");
    }

    #[test]
    fn jittered_schedule_is_seed_deterministic_and_bounded() {
        let p = BackoffPolicy::exponential(SimDuration::from_secs(30), SimDuration::from_secs(480))
            .with_jitter(0.25);
        let schedule = |seed: u64| -> Vec<u64> {
            let mut rng = SimRng::new(seed);
            (0..10).map(|a| p.delay(a, &mut rng).as_micros()).collect()
        };
        assert_eq!(schedule(42), schedule(42), "same seed, same schedule");
        assert_ne!(schedule(42), schedule(43), "jitter actually varies");
        let mut rng = SimRng::new(9);
        for attempt in 0..10 {
            let d = p.delay(attempt, &mut rng).as_secs_f64();
            let nominal = (30.0 * f64::from(1u32 << attempt.min(30))).min(480.0);
            assert!(d >= nominal * 0.75 - 1e-6 && d <= nominal * 1.25 + 1e-6);
        }
    }

    #[test]
    fn fixed_policy_is_flat() {
        let p = BackoffPolicy::fixed(SimDuration::from_secs(60));
        let mut rng = SimRng::new(3);
        for attempt in [0, 1, 5, 20] {
            assert_eq!(p.delay(attempt, &mut rng), SimDuration::from_secs(60));
        }
    }

    #[test]
    fn default_config_is_unarmed_and_jitterless() {
        let c = ResilienceConfig::default();
        assert!(!c.armed);
        assert_eq!(c.dial.jitter, 0.0);
        assert_eq!(c.announce.jitter, 0.0);
        assert_eq!(c.reannounce_jitter, 0.0);
        assert_eq!(c.max_dial_attempts, u32::MAX);
        assert_eq!(c.breaker_threshold, 0, "breaker must default off");
        // The unarmed announce policy's first retry matches the legacy
        // fixed 60 s outage retry.
        let mut rng = SimRng::new(1);
        assert_eq!(c.announce.delay(0, &mut rng), SimDuration::from_secs(60));
    }

    #[test]
    fn armed_preset_is_armed_with_jitter() {
        let c = ResilienceConfig::armed();
        assert!(c.armed);
        assert!(c.dial.jitter > 0.0);
        assert!(c.max_dial_attempts < u32::MAX);
        assert!(c.snub_timeout > SimDuration::ZERO);
        assert!(c.keepalive_timeout > c.keepalive_interval);
    }

    #[test]
    fn conn_state_is_comparable() {
        assert_eq!(ConnState::Connecting, ConnState::Connecting);
        assert_ne!(ConnState::Snubbed, ConnState::Established);
    }
}
