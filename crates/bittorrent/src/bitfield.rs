//! Piece-possession bitfields (the `bitfield` wire message payload).

use std::fmt;

/// A fixed-length bitfield with one bit per piece, most significant bit
/// first within each byte (wire order per BEP 3).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitfield {
    bits: Vec<u8>,
    len: u32,
}

impl Bitfield {
    /// Creates an all-zero bitfield for `len` pieces.
    pub fn new(len: u32) -> Self {
        Bitfield {
            bits: vec![0u8; len.div_ceil(8) as usize],
            len,
        }
    }

    /// Creates an all-one bitfield (a seed's bitfield).
    pub fn full(len: u32) -> Self {
        let mut bf = Bitfield::new(len);
        for i in 0..len {
            bf.set(i);
        }
        bf
    }

    /// Parses wire bytes; fails when the byte count is wrong or spare bits
    /// are set.
    pub fn from_bytes(bytes: &[u8], len: u32) -> Option<Bitfield> {
        if bytes.len() != len.div_ceil(8) as usize {
            return None;
        }
        let bf = Bitfield {
            bits: bytes.to_vec(),
            len,
        };
        // Spare (past-the-end) bits must be zero.
        for i in len..(bf.bits.len() as u32 * 8) {
            if bf.get_raw(i) {
                return None;
            }
        }
        Some(bf)
    }

    /// The wire representation.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Number of pieces this bitfield covers.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when it covers zero pieces.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn get_raw(&self, index: u32) -> bool {
        let byte = (index / 8) as usize;
        let bit = 7 - (index % 8);
        (self.bits[byte] >> bit) & 1 == 1
    }

    /// Whether piece `index` is present.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len`.
    pub fn get(&self, index: u32) -> bool {
        assert!(index < self.len, "piece {index} out of range {}", self.len);
        self.get_raw(index)
    }

    /// Marks piece `index` present.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len`.
    pub fn set(&mut self, index: u32) {
        assert!(index < self.len, "piece {index} out of range {}", self.len);
        let byte = (index / 8) as usize;
        let bit = 7 - (index % 8);
        self.bits[byte] |= 1 << bit;
    }

    /// Clears piece `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len`.
    pub fn clear(&mut self, index: u32) {
        assert!(index < self.len, "piece {index} out of range {}", self.len);
        let byte = (index / 8) as usize;
        let bit = 7 - (index % 8);
        self.bits[byte] &= !(1 << bit);
    }

    /// Number of pieces present.
    pub fn count(&self) -> u32 {
        self.bits.iter().map(|b| b.count_ones()).sum()
    }

    /// True when every piece is present.
    pub fn is_complete(&self) -> bool {
        self.count() == self.len
    }

    /// Iterates over the indices of present pieces.
    pub fn iter_set(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).filter(move |&i| self.get_raw(i))
    }

    /// Iterates over the indices of missing pieces.
    pub fn iter_unset(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).filter(move |&i| !self.get_raw(i))
    }

    /// Pieces present in `other` but missing here (what we could request).
    pub fn missing_from(&self, other: &Bitfield) -> impl Iterator<Item = u32> + '_ {
        let other = other.clone();
        (0..self.len).filter(move |&i| !self.get_raw(i) && i < other.len && other.get_raw(i))
    }

    /// Length in bytes of the wire representation.
    pub fn byte_len(&self) -> u32 {
        self.bits.len() as u32
    }
}

impl fmt::Debug for Bitfield {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitfield({}/{})", self.count(), self.len)
    }
}

impl simnet::snapshot::Snap for Bitfield {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        w.put_u32(self.len);
        w.put_bytes(&self.bits);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        let len = r.get_u32();
        Bitfield {
            bits: r.get_byte_vec(),
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bf = Bitfield::new(10);
        assert!(!bf.get(3));
        bf.set(3);
        assert!(bf.get(3));
        assert_eq!(bf.count(), 1);
        bf.clear(3);
        assert!(!bf.get(3));
    }

    #[test]
    fn msb_first_wire_order() {
        let mut bf = Bitfield::new(16);
        bf.set(0);
        bf.set(9);
        assert_eq!(bf.as_bytes(), &[0b1000_0000, 0b0100_0000]);
    }

    #[test]
    fn full_and_complete() {
        let bf = Bitfield::full(9);
        assert!(bf.is_complete());
        assert_eq!(bf.count(), 9);
        // Spare bits in the second byte stay clear.
        assert_eq!(bf.as_bytes()[1], 0b1000_0000);
    }

    #[test]
    fn from_bytes_validates() {
        assert!(Bitfield::from_bytes(&[0xFF], 8).is_some());
        assert!(Bitfield::from_bytes(&[0xFF], 7).is_none(), "spare bit set");
        assert!(Bitfield::from_bytes(&[0xFE], 7).is_some());
        assert!(
            Bitfield::from_bytes(&[0xFF, 0x00], 8).is_none(),
            "wrong length"
        );
    }

    #[test]
    fn iteration() {
        let mut bf = Bitfield::new(5);
        bf.set(1);
        bf.set(4);
        assert_eq!(bf.iter_set().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(bf.iter_unset().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn missing_from_intersects() {
        let mut ours = Bitfield::new(6);
        ours.set(0);
        ours.set(1);
        let mut theirs = Bitfield::new(6);
        theirs.set(1);
        theirs.set(3);
        theirs.set(5);
        assert_eq!(ours.missing_from(&theirs).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let bf = Bitfield::new(4);
        let _ = bf.get(4);
    }

    #[test]
    fn empty_bitfield() {
        let bf = Bitfield::new(0);
        assert!(bf.is_empty());
        assert!(bf.is_complete());
        assert_eq!(bf.byte_len(), 0);
    }
}
