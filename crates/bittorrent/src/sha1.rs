//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! BitTorrent uses SHA-1 for piece hashes and the info-hash that names a
//! swarm. Cryptographic strength is irrelevant here (and SHA-1 is broken
//! for adversarial collisions anyway); what matters is bit-exact
//! compatibility with the digests real `.torrent` files carry, verified
//! below against the FIPS test vectors.

/// A 20-byte SHA-1 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 20]);

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({self})")
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Streaming SHA-1 hasher.
///
/// ```
/// use bittorrent::sha1::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finish().to_string(),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Sha1 {
    state: [u32; 5],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    /// Partial block awaiting processing.
    buffer: [u8; 64],
    buffered: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buffer: [0u8; 64],
            buffered: 0,
        }
    }

    /// One-shot convenience: the digest of `data`.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha1::new();
        h.update(data);
        h.finish()
    }

    /// Feeds more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len += data.len() as u64;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut buf = [0u8; 64];
            buf.copy_from_slice(block);
            self.compress(&buf);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finalizes and returns the digest.
    pub fn finish(mut self) -> Digest {
        let bit_len = self.len * 8;
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Manual write of the length (update would count it).
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        Sha1::digest(data).to_string()
    }

    #[test]
    fn fips_vectors() {
        // FIPS 180-1 appendix A and B.
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        // FIPS 180-1 appendix C: one million 'a's.
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finish().to_string(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1_000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha1::digest(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        let mut h = Sha1::new();
        let mut rest = &data[..];
        for size in [1usize, 63, 64, 65, 200, 7].iter().cycle() {
            if rest.is_empty() {
                break;
            }
            let take = (*size).min(rest.len());
            h.update(&rest[..take]);
            rest = &rest[take..];
        }
        assert_eq!(h.finish(), oneshot);
    }

    #[test]
    fn block_boundary_lengths() {
        // 55, 56, 57, 63, 64, 65 bytes exercise the padding edge cases.
        for n in [55usize, 56, 57, 63, 64, 65] {
            let data = vec![0x5Au8; n];
            let a = Sha1::digest(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finish(), a, "length {n}");
        }
    }

    #[test]
    fn digest_display_roundtrip() {
        let d = Sha1::digest(b"abc");
        assert_eq!(d.to_string().len(), 40);
        assert_eq!(format!("{d:?}"), format!("Digest({d})"));
        assert_eq!(d.as_ref().len(), 20);
    }
}
