//! Torrent metainfo (`.torrent` files, BEP 3).
//!
//! A metainfo file carries the tracker URL plus an `info` dictionary: file
//! name, piece length, total length, and the SHA-1 digest of every piece.
//! The SHA-1 of the bencoded `info` dictionary — the **info-hash** — names
//! the swarm.
//!
//! Two construction paths exist:
//!
//! * [`Metainfo::from_content`] hashes real bytes (used by examples and
//!   tests with small payloads, and byte-compatible with real clients).
//! * [`Metainfo::synthetic`] builds metainfo for a *virtual* file of any
//!   size: piece digests are derived from a seed instead of from data.
//!   Large-swarm simulations never materialize the hundreds of megabytes
//!   the paper's experiments transfer; delivery correctness is enforced by
//!   the reliable transport and block accounting instead of by rehashing.

use crate::bencode::{DecodeError, Value};
use crate::sha1::{Digest, Sha1};
use std::collections::BTreeMap;
use std::fmt;

/// The SHA-1 of the bencoded `info` dictionary; identifies a swarm.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InfoHash(pub [u8; 20]);

impl fmt::Debug for InfoHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InfoHash({self})")
    }
}

impl fmt::Display for InfoHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..6] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

impl InfoHash {
    /// The full 40-character lowercase hex form (as magnet links carry).
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses a 40-character hex string (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns a message when the length or a digit is wrong.
    pub fn from_hex(s: &str) -> Result<InfoHash, String> {
        let s = s.trim();
        if s.len() != 40 {
            return Err(format!("expected 40 hex chars, got {}", s.len()));
        }
        let mut out = [0u8; 20];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit at {}", i * 2))?;
            let lo = (chunk[1] as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit at {}", i * 2 + 1))?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Ok(InfoHash(out))
    }
}

/// The `info` dictionary of a torrent (single-file form).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Info {
    /// Suggested file name.
    pub name: String,
    /// Piece length in bytes (the paper uses the 256 KB default).
    pub piece_length: u32,
    /// Total file length in bytes.
    pub length: u64,
    /// SHA-1 digest of each piece, in order.
    pub pieces: Vec<Digest>,
}

/// Errors validating a metainfo structure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MetainfoError {
    /// The bencode itself was malformed.
    Bencode(DecodeError),
    /// A required key was missing or had the wrong type.
    Missing(&'static str),
    /// The `pieces` string is not a multiple of 20 bytes.
    BadPieces,
    /// Piece count does not match `length` / `piece length`.
    PieceCountMismatch {
        /// Pieces listed in the file.
        listed: usize,
        /// Pieces implied by length and piece length.
        expected: usize,
    },
    /// A non-positive length or piece length.
    BadNumber(&'static str),
}

impl fmt::Display for MetainfoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetainfoError::Bencode(e) => write!(f, "bencode error: {e}"),
            MetainfoError::Missing(k) => write!(f, "missing or mistyped key `{k}`"),
            MetainfoError::BadPieces => write!(f, "`pieces` is not a multiple of 20 bytes"),
            MetainfoError::PieceCountMismatch { listed, expected } => {
                write!(f, "{listed} piece hashes listed, {expected} expected")
            }
            MetainfoError::BadNumber(k) => write!(f, "non-positive value for `{k}`"),
        }
    }
}

impl std::error::Error for MetainfoError {}

impl From<DecodeError> for MetainfoError {
    fn from(e: DecodeError) -> Self {
        MetainfoError::Bencode(e)
    }
}

impl Info {
    /// Number of pieces.
    pub fn num_pieces(&self) -> u32 {
        self.pieces.len() as u32
    }

    /// Size in bytes of piece `index` (the final piece may be short).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn piece_size(&self, index: u32) -> u32 {
        assert!(index < self.num_pieces(), "piece {index} out of range");
        let start = index as u64 * self.piece_length as u64;
        let end = (start + self.piece_length as u64).min(self.length);
        (end - start) as u32
    }

    /// Bencodes the info dictionary (canonical form).
    pub fn to_bencode(&self) -> Value {
        let mut pieces = Vec::with_capacity(self.pieces.len() * 20);
        for d in &self.pieces {
            pieces.extend_from_slice(&d.0);
        }
        let mut map = BTreeMap::new();
        map.insert(b"length".to_vec(), Value::Int(self.length as i64));
        map.insert(b"name".to_vec(), Value::str(&self.name));
        map.insert(
            b"piece length".to_vec(),
            Value::Int(self.piece_length as i64),
        );
        map.insert(b"pieces".to_vec(), Value::Bytes(pieces));
        Value::Dict(map)
    }

    /// The SHA-1 of the bencoded info dictionary.
    pub fn info_hash(&self) -> InfoHash {
        InfoHash(Sha1::digest(&self.to_bencode().encode()).0)
    }
}

/// A parsed `.torrent` file (single-file form).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Metainfo {
    /// Tracker identifier (a URL in real torrents; an opaque name here).
    pub announce: String,
    /// The info dictionary.
    pub info: Info,
}

impl Metainfo {
    /// Builds metainfo by hashing real content.
    ///
    /// # Panics
    ///
    /// Panics when `piece_length` is zero.
    pub fn from_content(name: &str, announce: &str, piece_length: u32, content: &[u8]) -> Metainfo {
        assert!(piece_length > 0, "piece length must be positive");
        let pieces = content
            .chunks(piece_length as usize)
            .map(Sha1::digest)
            .collect::<Vec<_>>();
        Metainfo {
            announce: announce.to_string(),
            info: Info {
                name: name.to_string(),
                piece_length,
                length: content.len() as u64,
                pieces,
            },
        }
    }

    /// Builds metainfo for a virtual file of `length` bytes whose piece
    /// digests are derived from `seed`. No content exists; see the module
    /// docs for why this is sound for the simulations.
    ///
    /// # Panics
    ///
    /// Panics when `piece_length` is zero or `length` is zero.
    pub fn synthetic(
        name: &str,
        announce: &str,
        piece_length: u32,
        length: u64,
        seed: u64,
    ) -> Metainfo {
        assert!(piece_length > 0, "piece length must be positive");
        assert!(length > 0, "length must be positive");
        let num = length.div_ceil(piece_length as u64);
        let pieces = (0..num)
            .map(|i| {
                let mut h = Sha1::new();
                h.update(b"wp2p-synthetic-piece");
                h.update(&seed.to_be_bytes());
                h.update(&i.to_be_bytes());
                h.finish()
            })
            .collect();
        Metainfo {
            announce: announce.to_string(),
            info: Info {
                name: name.to_string(),
                piece_length,
                length,
                pieces,
            },
        }
    }

    /// Bencodes the whole metainfo (the `.torrent` file bytes).
    pub fn to_bencode(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert(b"announce".to_vec(), Value::str(&self.announce));
        map.insert(b"info".to_vec(), self.info.to_bencode());
        Value::Dict(map)
    }

    /// Serializes to `.torrent` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bencode().encode()
    }

    /// Parses and validates `.torrent` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MetainfoError`] on malformed bencode, missing keys, or
    /// inconsistent piece bookkeeping.
    pub fn from_bytes(bytes: &[u8]) -> Result<Metainfo, MetainfoError> {
        let value = Value::decode(bytes)?;
        let announce = value
            .get("announce")
            .and_then(Value::as_str)
            .ok_or(MetainfoError::Missing("announce"))?
            .to_string();
        let info_val = value.get("info").ok_or(MetainfoError::Missing("info"))?;
        let name = info_val
            .get("name")
            .and_then(Value::as_str)
            .ok_or(MetainfoError::Missing("name"))?
            .to_string();
        let piece_length = info_val
            .get("piece length")
            .and_then(Value::as_int)
            .ok_or(MetainfoError::Missing("piece length"))?;
        if piece_length <= 0 || piece_length > u32::MAX as i64 {
            return Err(MetainfoError::BadNumber("piece length"));
        }
        let length = info_val
            .get("length")
            .and_then(Value::as_int)
            .ok_or(MetainfoError::Missing("length"))?;
        if length <= 0 {
            return Err(MetainfoError::BadNumber("length"));
        }
        let pieces_raw = info_val
            .get("pieces")
            .and_then(Value::as_bytes)
            .ok_or(MetainfoError::Missing("pieces"))?;
        if pieces_raw.len() % 20 != 0 {
            return Err(MetainfoError::BadPieces);
        }
        let pieces: Vec<Digest> = pieces_raw
            .chunks_exact(20)
            .map(|c| {
                let mut d = [0u8; 20];
                d.copy_from_slice(c);
                Digest(d)
            })
            .collect();
        let expected = (length as u64).div_ceil(piece_length as u64) as usize;
        if pieces.len() != expected {
            return Err(MetainfoError::PieceCountMismatch {
                listed: pieces.len(),
                expected,
            });
        }
        Ok(Metainfo {
            announce,
            info: Info {
                name,
                piece_length: piece_length as u32,
                length: length as u64,
                pieces,
            },
        })
    }
}

impl Info {
    /// Verifies a downloaded piece against its recorded SHA-1.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn verify_piece(&self, index: u32, data: &[u8]) -> bool {
        assert!(index < self.num_pieces(), "piece {index} out of range");
        data.len() as u32 == self.piece_size(index)
            && Sha1::digest(data) == self.pieces[index as usize]
    }
}

/// Deterministically generates the bytes of a synthetic torrent's block —
/// used by packet-level tests that want real content matching nothing in
/// particular but reproducible across peers.
pub fn synthetic_block(seed: u64, piece: u32, offset: u32, len: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(len as usize);
    let mut counter = 0u64;
    while out.len() < len as usize {
        let mut h = Sha1::new();
        h.update(b"wp2p-synthetic-data");
        h.update(&seed.to_be_bytes());
        h.update(&piece.to_be_bytes());
        h.update(&(offset as u64 + counter * 20).to_be_bytes());
        out.extend_from_slice(&h.finish().0);
        counter += 1;
    }
    out.truncate(len as usize);
    out
}

impl simnet::snapshot::Snap for InfoHash {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        w.put_bytes(&self.0);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        let v = r.get_byte_vec();
        InfoHash(v.try_into().expect("snapshot: InfoHash must be 20 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_content_hashes_pieces() {
        let content = vec![7u8; 100];
        let m = Metainfo::from_content("f", "tracker", 40, &content);
        assert_eq!(m.info.num_pieces(), 3);
        assert_eq!(m.info.piece_size(0), 40);
        assert_eq!(m.info.piece_size(2), 20, "last piece is short");
        assert_eq!(m.info.pieces[0], Sha1::digest(&content[..40]));
        assert_eq!(m.info.pieces[2], Sha1::digest(&content[80..]));
    }

    #[test]
    fn bencode_roundtrip() {
        let m = Metainfo::from_content("file.iso", "tr", 16, &[1u8; 50]);
        let bytes = m.to_bytes();
        let back = Metainfo::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn info_hash_is_stable_and_content_sensitive() {
        let a = Metainfo::from_content("f", "tr", 16, &[1u8; 64]);
        let b = Metainfo::from_content("f", "tr", 16, &[1u8; 64]);
        let c = Metainfo::from_content("f", "tr", 16, &[2u8; 64]);
        assert_eq!(a.info.info_hash(), b.info.info_hash());
        assert_ne!(a.info.info_hash(), c.info.info_hash());
        // The announce URL is outside the info dict: no effect.
        let d = Metainfo::from_content("f", "other-tracker", 16, &[1u8; 64]);
        assert_eq!(a.info.info_hash(), d.info.info_hash());
    }

    #[test]
    fn synthetic_matches_paper_scale() {
        // The Fedora 7 image from §5.2.2: 688 MB at 256 KB pieces.
        let m = Metainfo::synthetic(
            "Fedora-7-KDE-Live-i686.iso",
            "tr",
            256 * 1024,
            688 * 1024 * 1024,
            42,
        );
        assert_eq!(m.info.num_pieces(), 2752);
        assert_eq!(m.info.piece_size(0), 256 * 1024);
        // Deterministic across constructions.
        let m2 = Metainfo::synthetic(
            "Fedora-7-KDE-Live-i686.iso",
            "tr",
            256 * 1024,
            688 * 1024 * 1024,
            42,
        );
        assert_eq!(m.info.info_hash(), m2.info.info_hash());
    }

    #[test]
    fn validation_rejects_mismatched_piece_count() {
        let mut m = Metainfo::from_content("f", "tr", 16, &[1u8; 64]);
        m.info.pieces.pop();
        let bytes = m.to_bytes();
        assert!(matches!(
            Metainfo::from_bytes(&bytes),
            Err(MetainfoError::PieceCountMismatch { .. })
        ));
    }

    #[test]
    fn validation_rejects_missing_keys() {
        let v = Value::Dict(BTreeMap::new());
        assert!(matches!(
            Metainfo::from_bytes(&v.encode()),
            Err(MetainfoError::Missing("announce"))
        ));
    }

    #[test]
    fn synthetic_block_is_deterministic() {
        let a = synthetic_block(1, 5, 100, 333);
        let b = synthetic_block(1, 5, 100, 333);
        assert_eq!(a, b);
        assert_eq!(a.len(), 333);
        assert_ne!(a, synthetic_block(2, 5, 100, 333));
    }

    #[test]
    fn verify_piece_accepts_real_and_rejects_corrupt() {
        let content: Vec<u8> = (0..100u8).collect();
        let m = Metainfo::from_content("f", "tr", 40, &content);
        assert!(m.info.verify_piece(0, &content[..40]));
        assert!(m.info.verify_piece(2, &content[80..]));
        let mut corrupt = content[..40].to_vec();
        corrupt[0] ^= 1;
        assert!(!m.info.verify_piece(0, &corrupt));
        assert!(!m.info.verify_piece(0, &content[..39]), "wrong length");
    }

    #[test]
    fn info_hash_hex_roundtrip() {
        let ih = Metainfo::from_content("f", "tr", 16, &[1u8; 64])
            .info
            .info_hash();
        let hex = ih.to_hex();
        assert_eq!(hex.len(), 40);
        assert_eq!(InfoHash::from_hex(&hex).unwrap(), ih);
        assert_eq!(InfoHash::from_hex(&hex.to_uppercase()).unwrap(), ih);
        assert!(InfoHash::from_hex("xyz").is_err());
        assert!(InfoHash::from_hex(&"g".repeat(40)).is_err());
    }

    #[test]
    fn error_messages_render() {
        let e = MetainfoError::PieceCountMismatch {
            listed: 3,
            expected: 4,
        };
        assert!(e.to_string().contains("3 piece hashes"));
    }
}
