//! Client strategies: the population zoo the incentive experiments draw
//! from.
//!
//! The paper's identity-retention argument (§4.2) assumes tit-for-tat
//! standing survives *adversarial* churn, not just benign mobility.
//! Nielson et al. catalogue the attack taxonomy; Violaris &
//! Mavromoustakis motivate hybrid clients that degrade to mobile
//! behaviour only part of the time. This module packages both as a
//! [`ClientStrategy`] trait the [`crate::client::Client`] consults at its
//! decision points, plus a seeded [`PopulationMix`] that assigns a
//! strategy to every peer of a swarm deterministically — the assignment
//! is a pure function of `(mix, seed, peer index)`, so sweeps replay
//! byte-identically regardless of `WP2P_THREADS`.
//!
//! Four implementations ship:
//!
//! * [`Honest`] — the baseline client, byte-identical to the pre-zoo
//!   behaviour (every hook is the identity).
//! * [`FreeRider`] — uploads nothing, keeps an oversized request
//!   pipeline, and re-announces early to keep harvesting optimistic
//!   unchoke grants from fresh peers.
//! * [`BitTyrant`] — strategic unchoker: maintains a per-peer estimate
//!   of how much standing it costs to keep that peer reciprocating, and
//!   reallocates its unchoke preferences toward the *cheapest*
//!   reciprocators (Piatek et al.'s observation, via Nielson's
//!   taxonomy). Optionally churns its identity on every re-initiation
//!   to farm newcomer treatment.
//! * [`HybridMobility`] — partial-mobility hybrid: at each task
//!   (re)initiation it draws whether this generation behaves like a
//!   degraded mobile client (no uploads, identity lost) or like an
//!   honest fixed one.

use crate::choker::ConnKey;
use crate::peer_id::PeerId;
use simnet::hash::FastHashMap;
use simnet::rng::SimRng;
use simnet::snapshot::{snap_hash_map, unsnap_hash_map, SnapReader, SnapWriter};

/// The strategy classes the zoo distinguishes (reporting key).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StrategyKind {
    /// Protocol-faithful baseline.
    Honest,
    /// Uploads nothing; lives off optimistic slots.
    FreeRider,
    /// BitTyrant-style strategic unchoker.
    Strategic,
    /// Partial-mobility hybrid (Violaris & Mavromoustakis).
    Hybrid,
}

impl StrategyKind {
    /// Stable lowercase name for tables and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Honest => "honest",
            StrategyKind::FreeRider => "free_rider",
            StrategyKind::Strategic => "strategic",
            StrategyKind::Hybrid => "hybrid",
        }
    }
}

/// Per-peer view handed to the strategy hooks at every rechoke round.
#[derive(Clone, Copy, Debug)]
pub struct StrategyPeer {
    /// Connection key.
    pub key: ConnKey,
    /// The peer's id, once its handshake arrived.
    pub peer_id: Option<PeerId>,
    /// Whether the peer wants data from us.
    pub interested: bool,
    /// The credit the default tit-for-tat policy would hand the choker
    /// (live rate plus weighted relationship history).
    pub credit: f64,
    /// Whether the peer currently has us unchoked (the reciprocation
    /// signal strategic unchokers learn from).
    pub unchoked_us: bool,
    /// Whether we left the previous round with this peer unchoked.
    pub we_unchoked: bool,
}

/// Behaviour hooks a client consults at its decision points. Every hook
/// defaults to the honest identity, so implementing a strategy means
/// overriding only the behaviours it actually perverts.
///
/// Hook map (caller → decision):
///
/// * announce behaviour — [`ClientStrategy::announce_stretch`] scales
///   the tracker-assigned re-announce interval;
/// * unchoke/credit policy — [`ClientStrategy::observe_rechoke`] sees
///   each round's reciprocation state, then
///   [`ClientStrategy::shape_credit`] rewrites the credit the choker
///   ranks by, and [`ClientStrategy::uploads`] gates request service;
/// * request scheduling — [`ClientStrategy::pipeline_cap`] resizes the
///   outstanding-request pipeline;
/// * handoff/identity behaviour — [`ClientStrategy::on_reinit`] runs at
///   every task (re)initiation and [`ClientStrategy::churn_identity`]
///   decides whether the client deliberately regenerates its peer-id
///   even when the world would have retained it.
pub trait ClientStrategy: std::fmt::Debug + Send {
    /// Which class this strategy belongs to.
    fn kind(&self) -> StrategyKind;

    /// Whether incoming requests are ever served. `false` turns the
    /// client into a leech that ignores all requests (the free-rider
    /// arm), independent of `ClientConfig::allow_upload`.
    fn uploads(&self) -> bool {
        true
    }

    /// Multiplier on the tracker-assigned announce interval. Values
    /// below 1 re-announce early (harvesting fresh peers); 1.0 is the
    /// honest schedule and is guaranteed not to perturb its timing.
    fn announce_stretch(&self) -> f64 {
        1.0
    }

    /// Outstanding-request pipeline size, given the configured cap.
    fn pipeline_cap(&self, configured: usize) -> usize {
        configured
    }

    /// Observes one rechoke round's reciprocation state before the
    /// decision is made (strategic unchokers update their cost
    /// estimates here).
    fn observe_rechoke(&mut self, peers: &[StrategyPeer]) {
        let _ = peers;
    }

    /// Rewrites the credit the choker will rank `peer` by. The honest
    /// policy is the identity.
    fn shape_credit(&self, peer: &StrategyPeer) -> f64 {
        peer.credit
    }

    /// Runs at every task (re)initiation, before the world decides the
    /// client's peer-id. `generation` counts re-initiations; `rng` is
    /// the task's seeded stream (drawing from it is deterministic and
    /// isolated per task).
    fn on_reinit(&mut self, generation: u32, rng: &mut SimRng) {
        let _ = (generation, rng);
    }

    /// Whether this client deliberately regenerates its peer-id at
    /// re-initiation even when identity retention would preserve it
    /// (the address-churn exploit probed by the `exploit` experiment).
    fn churn_identity(&self) -> bool {
        false
    }

    /// Serializes mutable strategy state (snapshot support). Stateless
    /// strategies write nothing.
    fn save(&self, w: &mut SnapWriter) {
        let _ = w;
    }

    /// Restores state written by [`ClientStrategy::save`] onto a fresh
    /// instance of the same strategy.
    fn load(&mut self, r: &mut SnapReader<'_>) {
        let _ = r;
    }
}

/// The protocol-faithful baseline; every hook is the identity, so a
/// client running `Honest` is byte-identical to the pre-zoo client.
#[derive(Clone, Copy, Debug, Default)]
pub struct Honest;

impl ClientStrategy for Honest {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Honest
    }
}

/// Uploads nothing and lives off optimistic-unchoke grants: ignores
/// every request, keeps a double-sized request pipeline, and
/// re-announces at half the tracker interval to keep meeting peers that
/// have not yet learned it never reciprocates.
#[derive(Clone, Copy, Debug, Default)]
pub struct FreeRider;

impl ClientStrategy for FreeRider {
    fn kind(&self) -> StrategyKind {
        StrategyKind::FreeRider
    }
    fn uploads(&self) -> bool {
        false
    }
    fn announce_stretch(&self) -> f64 {
        0.5
    }
    fn pipeline_cap(&self, configured: usize) -> usize {
        configured.saturating_mul(2)
    }
}

/// BitTyrant-style strategic unchoker.
///
/// Maintains a per-peer-id multiplicative estimate of the *cost* of
/// keeping that peer reciprocating: every round a peer we unchoked also
/// unchokes us, its estimated cost shrinks; every round it takes our
/// slot without reciprocating, the estimate grows. The choker then
/// ranks peers by `credit / cost`, which reallocates upload slots to
/// the cheapest reciprocators first. With `churn` set, the client also
/// regenerates its peer-id at every re-initiation — the address-churn
/// exploit the `exploit` experiment measures.
#[derive(Clone, Debug)]
pub struct BitTyrant {
    /// Estimated standing cost of reciprocation per peer-id.
    cost: FastHashMap<PeerId, f64>,
    /// Deliberately regenerate identity at re-initiation.
    churn: bool,
}

impl BitTyrant {
    /// Cost shrink per reciprocated round.
    const REWARD: f64 = 0.9;
    /// Cost growth per unreciprocated round.
    const PENALTY: f64 = 1.2;
    /// Cost clamp (keeps the ranking finite under long streaks).
    const MIN_COST: f64 = 0.1;
    /// Upper cost clamp.
    const MAX_COST: f64 = 100.0;

    /// A tyrant that plays the identity game honestly.
    pub fn new() -> Self {
        BitTyrant {
            cost: FastHashMap::default(),
            churn: false,
        }
    }

    /// A tyrant that additionally churns its peer-id at every
    /// re-initiation.
    pub fn churning() -> Self {
        BitTyrant {
            cost: FastHashMap::default(),
            churn: true,
        }
    }

    /// The current cost estimate for a peer (1.0 when unknown).
    pub fn cost_of(&self, id: PeerId) -> f64 {
        self.cost.get(&id).copied().unwrap_or(1.0)
    }
}

impl Default for BitTyrant {
    fn default() -> Self {
        BitTyrant::new()
    }
}

impl ClientStrategy for BitTyrant {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Strategic
    }
    fn observe_rechoke(&mut self, peers: &[StrategyPeer]) {
        for p in peers {
            let Some(id) = p.peer_id else { continue };
            if !p.we_unchoked {
                continue; // no slot spent, nothing learned
            }
            let c = self.cost.entry(id).or_insert(1.0);
            if p.unchoked_us {
                *c = (*c * Self::REWARD).max(Self::MIN_COST);
            } else {
                *c = (*c * Self::PENALTY).min(Self::MAX_COST);
            }
        }
    }
    fn shape_credit(&self, peer: &StrategyPeer) -> f64 {
        let cost = peer.peer_id.map_or(1.0, |id| self.cost_of(id));
        peer.credit / cost
    }
    fn churn_identity(&self) -> bool {
        self.churn
    }
    fn save(&self, w: &mut SnapWriter) {
        snap_hash_map(&self.cost, w);
    }
    fn load(&mut self, r: &mut SnapReader<'_>) {
        self.cost = unsnap_hash_map(r);
    }
}

/// Partial-mobility hybrid: at every task (re)initiation it draws, with
/// probability `degrade`, whether this generation behaves like a
/// degraded mobile client — no uploads and identity lost on the next
/// handoff — or like an honest fixed one. The draw comes from the
/// task's seeded rng, so populations containing hybrids stay replayable.
#[derive(Clone, Copy, Debug)]
pub struct HybridMobility {
    /// Probability a generation degrades to mobile behaviour.
    pub degrade: f64,
    degraded: bool,
}

impl HybridMobility {
    /// A hybrid degrading with probability `degrade` per generation.
    pub fn new(degrade: f64) -> Self {
        HybridMobility {
            degrade,
            degraded: false,
        }
    }

    /// Whether the current generation is in the degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }
}

impl ClientStrategy for HybridMobility {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Hybrid
    }
    fn uploads(&self) -> bool {
        !self.degraded
    }
    fn churn_identity(&self) -> bool {
        self.degraded
    }
    fn on_reinit(&mut self, _generation: u32, rng: &mut SimRng) {
        self.degraded = rng.chance(self.degrade);
    }
    fn save(&self, w: &mut SnapWriter) {
        w.put_bool(self.degraded);
    }
    fn load(&mut self, r: &mut SnapReader<'_>) {
        self.degraded = r.get_bool();
    }
}

/// Who a seed serves first — the scheduling knob for mobile requests.
///
/// A mobile host that loses its identity re-enters the swarm with zero
/// standing; whether that matters depends on how much the seed's
/// service order weighs relationship history against live push rate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServicePolicy {
    /// Legacy: rank by push rate with standing as tie-breaker (the
    /// default history weight). Mobile newcomers wait behind proven
    /// relationships.
    #[default]
    Standing,
    /// Ignore standing entirely: rank by live push rate only, so a
    /// just-re-initiated mobile peer is served as readily as a proven
    /// fixed one.
    NewcomerBoost,
    /// Standing dominates: proven relationships are served first and
    /// newcomers must win optimistic slots.
    ProvenFirst,
}


impl ServicePolicy {
    /// The relationship-history weight a seed's credit formula uses
    /// under this policy. `base` is the honest default weight.
    pub fn history_weight(self, base: f64) -> f64 {
        match self {
            ServicePolicy::Standing => base,
            ServicePolicy::NewcomerBoost => 0.0,
            ServicePolicy::ProvenFirst => 1.0,
        }
    }

    /// Stable name for params round-trips.
    pub fn name(self) -> &'static str {
        match self {
            ServicePolicy::Standing => "standing",
            ServicePolicy::NewcomerBoost => "newcomer_boost",
            ServicePolicy::ProvenFirst => "proven_first",
        }
    }

    /// Inverse of [`ServicePolicy::name`].
    pub fn from_name(name: &str) -> Option<ServicePolicy> {
        Some(match name {
            "standing" => ServicePolicy::Standing,
            "newcomer_boost" => ServicePolicy::NewcomerBoost,
            "proven_first" => ServicePolicy::ProvenFirst,
            _ => return None,
        })
    }
}

/// Seeded population mix: which fraction of a swarm runs which
/// strategy, and how the assignment is drawn.
///
/// [`PopulationMix::assign`] is a pure function of `(mix, seed, index)`
/// — it builds a throwaway rng forked per peer index, so the result
/// does not depend on call order, thread count, or any other peer's
/// assignment. The per-peer draw is a single uniform `u` cut by
/// cumulative thresholds, which makes sweeps over one fraction
/// *nested*: the free-riders at 20% are a superset of the free-riders
/// at 10%, so monotone trends are not confounded by resampling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PopulationMix {
    /// Fraction of peers running [`FreeRider`].
    pub free_rider: f64,
    /// Fraction running [`BitTyrant`] (honest identity game).
    pub strategic: f64,
    /// Fraction running [`HybridMobility`].
    pub hybrid: f64,
    /// Per-generation degrade probability for the hybrids.
    pub hybrid_degrade: f64,
}

/// Domain-separation salt for the assignment stream.
const MIX_SALT: u64 = 0x5EED_2005;

impl PopulationMix {
    /// The all-honest population.
    pub fn honest() -> Self {
        PopulationMix {
            free_rider: 0.0,
            strategic: 0.0,
            hybrid: 0.0,
            hybrid_degrade: 0.5,
        }
    }

    /// A mix with `free_rider` free-riders and the rest honest.
    pub fn free_riders(free_rider: f64) -> Self {
        PopulationMix {
            free_rider,
            ..PopulationMix::honest()
        }
    }

    /// The strategy class of peer `index` under `seed`. Pure in
    /// `(self, seed, index)`.
    pub fn assign(&self, seed: u64, index: u64) -> StrategyKind {
        let u = SimRng::new(seed ^ MIX_SALT).fork(index).unit();
        if u < self.free_rider {
            StrategyKind::FreeRider
        } else if u < self.free_rider + self.strategic {
            StrategyKind::Strategic
        } else if u < self.free_rider + self.strategic + self.hybrid {
            StrategyKind::Hybrid
        } else {
            StrategyKind::Honest
        }
    }

    /// Builds the strategy instance for peer `index` under `seed`.
    pub fn build(&self, seed: u64, index: u64) -> Box<dyn ClientStrategy> {
        match self.assign(seed, index) {
            StrategyKind::Honest => Box::new(Honest),
            StrategyKind::FreeRider => Box::new(FreeRider),
            StrategyKind::Strategic => Box::new(BitTyrant::new()),
            StrategyKind::Hybrid => Box::new(HybridMobility::new(self.hybrid_degrade)),
        }
    }

    /// Class counts over the first `n` peers (reporting helper).
    pub fn census(&self, seed: u64, n: u64) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for i in 0..n {
            match self.assign(seed, i) {
                StrategyKind::Honest => counts[0] += 1,
                StrategyKind::FreeRider => counts[1] += 1,
                StrategyKind::Strategic => counts[2] += 1,
                StrategyKind::Hybrid => counts[3] += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(id: u8, credit: f64, we_unchoked: bool, unchoked_us: bool) -> StrategyPeer {
        StrategyPeer {
            key: id as u64,
            peer_id: Some(PeerId([id; 20])),
            interested: true,
            credit,
            unchoked_us,
            we_unchoked,
        }
    }

    #[test]
    fn honest_hooks_are_the_identity() {
        let s = Honest;
        assert!(s.uploads());
        assert_eq!(s.announce_stretch(), 1.0);
        assert_eq!(s.pipeline_cap(8), 8);
        assert!(!s.churn_identity());
        let p = peer(1, 123.0, true, false);
        assert_eq!(s.shape_credit(&p), 123.0);
    }

    #[test]
    fn free_rider_never_uploads_and_announces_early() {
        let s = FreeRider;
        assert!(!s.uploads());
        assert!(s.announce_stretch() < 1.0);
        assert_eq!(s.pipeline_cap(8), 16);
    }

    #[test]
    fn tyrant_prefers_cheap_reciprocators() {
        let mut t = BitTyrant::new();
        // Peer 1 reciprocates our unchokes; peer 2 takes the slot and
        // gives nothing back.
        let rounds = [
            peer(1, 100.0, true, true),
            peer(2, 100.0, true, false),
        ];
        for _ in 0..5 {
            t.observe_rechoke(&rounds);
        }
        assert!(t.cost_of(PeerId([1; 20])) < 1.0);
        assert!(t.cost_of(PeerId([2; 20])) > 1.0);
        // Equal raw credit now ranks the reciprocator strictly higher.
        assert!(t.shape_credit(&rounds[0]) > t.shape_credit(&rounds[1]));
        // Costs stay clamped under arbitrary streaks.
        for _ in 0..1000 {
            t.observe_rechoke(&rounds);
        }
        assert!(t.cost_of(PeerId([1; 20])) >= BitTyrant::MIN_COST);
        assert!(t.cost_of(PeerId([2; 20])) <= BitTyrant::MAX_COST);
    }

    #[test]
    fn unspent_slots_teach_the_tyrant_nothing() {
        let mut t = BitTyrant::new();
        t.observe_rechoke(&[peer(3, 10.0, false, true)]);
        assert_eq!(t.cost_of(PeerId([3; 20])), 1.0);
    }

    #[test]
    fn hybrid_degrade_follows_the_seeded_draw() {
        let mut h = HybridMobility::new(0.5);
        let mut rng = SimRng::new(7);
        let mut saw_degraded = false;
        let mut saw_honest = false;
        for generation in 0..64 {
            h.on_reinit(generation, &mut rng);
            assert_eq!(h.uploads(), !h.is_degraded());
            assert_eq!(h.churn_identity(), h.is_degraded());
            saw_degraded |= h.is_degraded();
            saw_honest |= !h.is_degraded();
        }
        assert!(saw_degraded && saw_honest, "p=0.5 over 64 draws hit both");
        // The always/never endpoints are deterministic.
        let mut always = HybridMobility::new(1.0);
        always.on_reinit(0, &mut rng);
        assert!(always.is_degraded());
        let mut never = HybridMobility::new(0.0);
        never.on_reinit(0, &mut rng);
        assert!(!never.is_degraded());
    }

    #[test]
    fn assignment_is_pure_and_call_order_free() {
        let mix = PopulationMix {
            free_rider: 0.25,
            strategic: 0.25,
            hybrid: 0.25,
            hybrid_degrade: 0.5,
        };
        let forward: Vec<StrategyKind> = (0..200).map(|i| mix.assign(42, i)).collect();
        let backward: Vec<StrategyKind> = (0..200).rev().map(|i| mix.assign(42, i)).collect();
        for (i, kind) in forward.iter().enumerate() {
            assert_eq!(*kind, backward[199 - i], "index {i} depends on call order");
            // And re-evaluating any single index is stable in isolation.
            assert_eq!(*kind, mix.assign(42, i as u64));
        }
        // All four classes are realised at these fractions.
        let counts = mix.census(42, 200);
        assert!(counts.iter().all(|&c| c > 0), "census {counts:?}");
        // A different seed yields a different assignment somewhere.
        assert!((0..200).any(|i| mix.assign(42, i) != mix.assign(43, i)));
    }

    #[test]
    fn fraction_sweeps_are_nested() {
        // Every free-rider at 10% is still a free-rider at 20%, 30%, 40%:
        // the per-peer uniform is cut by a growing threshold, never
        // resampled.
        let shares = [0.1, 0.2, 0.3, 0.4];
        for w in shares.windows(2) {
            let lo = PopulationMix::free_riders(w[0]);
            let hi = PopulationMix::free_riders(w[1]);
            for i in 0..500 {
                if lo.assign(7, i) == StrategyKind::FreeRider {
                    assert_eq!(
                        hi.assign(7, i),
                        StrategyKind::FreeRider,
                        "peer {i} lost free-rider status as the share grew"
                    );
                }
            }
        }
        // And the realised share grows with the nominal one.
        let lo = PopulationMix::free_riders(0.1).census(7, 500)[1];
        let hi = PopulationMix::free_riders(0.4).census(7, 500)[1];
        assert!(lo < hi, "census {lo} !< {hi}");
    }

    #[test]
    fn strategy_state_round_trips_through_snapshots() {
        let mut t = BitTyrant::churning();
        t.observe_rechoke(&[peer(1, 10.0, true, true), peer(2, 10.0, true, false)]);
        let mut w = SnapWriter::new(0);
        t.save(&mut w);
        let blob = w.into_bytes();
        let mut fresh = BitTyrant::churning();
        fresh.load(&mut SnapReader::new(&blob, 0));
        assert_eq!(fresh.cost_of(PeerId([1; 20])), t.cost_of(PeerId([1; 20])));
        assert_eq!(fresh.cost_of(PeerId([2; 20])), t.cost_of(PeerId([2; 20])));

        let mut h = HybridMobility::new(1.0);
        h.on_reinit(0, &mut SimRng::new(1));
        let mut w = SnapWriter::new(0);
        h.save(&mut w);
        let blob = w.into_bytes();
        let mut fresh = HybridMobility::new(1.0);
        fresh.load(&mut SnapReader::new(&blob, 0));
        assert!(fresh.is_degraded());
    }
}
