//! Rate measurement and limiting.
//!
//! [`RateEstimator`] measures per-peer transfer rates (the choker's
//! tit-for-tat input and LIHD's feedback signal); [`TokenBucket`] enforces
//! the client's configurable upload/download caps — the knob both the
//! paper's Fig. 3 sweeps and wP2P's LIHD controller turn.

use metrics::stats::RateMeter;
use simnet::time::{SimDuration, SimTime};

/// A windowed byte-rate estimator (20 s window, matching the granularity
/// BitTorrent clients use for choking decisions).
#[derive(Debug, Clone)]
pub struct RateEstimator {
    meter: RateMeter,
}

impl Default for RateEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RateEstimator {
    /// Creates an estimator with the standard 20 s window.
    pub fn new() -> Self {
        Self::with_window(SimDuration::from_secs(20))
    }

    /// Creates an estimator with a custom window.
    pub fn with_window(window: SimDuration) -> Self {
        RateEstimator {
            meter: RateMeter::new(window),
        }
    }

    /// Records `bytes` transferred at `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.meter.record(now, bytes);
    }

    /// Average rate over the window, bytes/second.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.meter.rate_bps(now)
    }

    /// Total bytes ever recorded.
    pub fn total(&self) -> u64 {
        self.meter.total_bytes()
    }
}

/// A token bucket limiting a byte stream to `rate` bytes/second with a
/// configurable burst. An unlimited bucket (rate `None`) always admits.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Bytes per second, or `None` for unlimited.
    rate: Option<f64>,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket; `burst` is the instantaneous allowance in bytes.
    ///
    /// # Panics
    ///
    /// Panics when a finite rate is non-positive or burst is non-positive.
    pub fn new(rate: Option<f64>, burst: f64) -> Self {
        if let Some(r) = rate {
            assert!(r > 0.0, "rate must be positive (use None for unlimited)");
        }
        assert!(burst > 0.0, "burst must be positive");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// An unlimited bucket.
    pub fn unlimited() -> Self {
        TokenBucket::new(None, 1.0)
    }

    /// The configured rate, bytes/second.
    pub fn rate(&self) -> Option<f64> {
        self.rate
    }

    /// Re-targets the bucket (LIHD adjusts this every control window).
    /// Accumulated debt/credit is preserved proportionally.
    pub fn set_rate(&mut self, rate: Option<f64>) {
        if let Some(r) = rate {
            assert!(r > 0.0, "rate must be positive (use None for unlimited)");
        }
        self.rate = rate;
    }

    fn refill(&mut self, now: SimTime) {
        let Some(rate) = self.rate else {
            return;
        };
        if now > self.last {
            let dt = (now - self.last).as_secs_f64();
            self.tokens = (self.tokens + rate * dt).min(self.burst);
        }
        self.last = self.last.max(now);
    }

    /// Tokens needed before `bytes` may be admitted: the full byte count,
    /// or a full bucket for payloads larger than the burst (which then go
    /// into debt — so a single block bigger than one second of rate is
    /// still eventually serviceable, just amortised).
    fn need(&self, bytes: u64) -> f64 {
        (bytes as f64).min(self.burst)
    }

    /// Attempts to consume `bytes` at `now`; returns whether admitted.
    /// Oversized payloads (larger than the burst) are admitted from a full
    /// bucket and drive the balance negative, delaying later admissions.
    pub fn try_consume(&mut self, now: SimTime, bytes: u64) -> bool {
        if self.rate.is_none() {
            return true;
        }
        self.refill(now);
        if self.tokens >= self.need(bytes) {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Earliest time at which `bytes` could be admitted (now, if already
    /// possible). Used to schedule deferred sends.
    pub fn next_admission(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let Some(rate) = self.rate else {
            return now;
        };
        self.refill(now);
        let need = self.need(bytes);
        if self.tokens >= need {
            return now;
        }
        let deficit = need - self.tokens;
        now + SimDuration::from_secs_f64(deficit / rate)
    }
}

use simnet::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for RateEstimator {
    fn snap(&self, w: &mut SnapWriter) {
        self.meter.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        RateEstimator {
            meter: Snap::unsnap(r),
        }
    }
}

impl Snap for TokenBucket {
    fn snap(&self, w: &mut SnapWriter) {
        self.rate.snap(w);
        w.put_f64(self.burst);
        w.put_f64(self.tokens);
        self.last.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        TokenBucket {
            rate: Snap::unsnap(r),
            burst: r.get_f64(),
            tokens: r.get_f64(),
            last: Snap::unsnap(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_admits() {
        let mut tb = TokenBucket::unlimited();
        assert!(tb.try_consume(SimTime::ZERO, u64::MAX / 2));
        assert_eq!(tb.next_admission(SimTime::ZERO, 1 << 40), SimTime::ZERO);
    }

    #[test]
    fn enforces_long_run_rate() {
        let mut tb = TokenBucket::new(Some(1000.0), 1000.0);
        let mut admitted = 0u64;
        // Try to push 100 B every 10 ms for 10 s = nominal 10 kB/s demand.
        for step in 0..1000u64 {
            let t = SimTime::from_millis(step * 10);
            if tb.try_consume(t, 100) {
                admitted += 100;
            }
        }
        // 1000 B/s for 10 s plus the initial burst.
        assert!((10_000..=11_200).contains(&admitted), "admitted={admitted}");
    }

    #[test]
    fn burst_caps_idle_accumulation() {
        let mut tb = TokenBucket::new(Some(100.0), 500.0);
        // After a long idle period, only `burst` is available.
        let t = SimTime::from_secs(1000);
        assert!(tb.try_consume(t, 500));
        assert!(!tb.try_consume(t, 1));
    }

    #[test]
    fn next_admission_predicts_correctly() {
        let mut tb = TokenBucket::new(Some(100.0), 100.0);
        let t0 = SimTime::ZERO;
        assert!(tb.try_consume(t0, 100)); // bucket drained
        let at = tb.next_admission(t0, 50);
        assert_eq!(at, t0 + SimDuration::from_millis(500));
        // At the predicted time, the consume succeeds.
        assert!(tb.try_consume(at, 50));
    }

    #[test]
    fn set_rate_changes_behaviour() {
        let mut tb = TokenBucket::new(Some(10.0), 10.0);
        let t0 = SimTime::ZERO;
        assert!(tb.try_consume(t0, 10));
        assert!(!tb.try_consume(t0, 10));
        tb.set_rate(None);
        assert!(tb.try_consume(t0, 1_000_000));
    }

    #[test]
    fn estimator_windows() {
        let mut est = RateEstimator::with_window(SimDuration::from_secs(10));
        est.record(SimTime::from_secs(0), 500);
        est.record(SimTime::from_secs(5), 500);
        assert_eq!(est.rate(SimTime::from_secs(5)), 100.0);
        assert_eq!(est.total(), 1000);
    }
}
