//! Tit-for-tat choking (paper §2.2).
//!
//! Every rechoke interval the client unchokes the `upload_slots` interested
//! peers with the highest **credit** (download rate they have recently
//! provided, keyed by peer-id), plus one *optimistic* unchoke rotated on a
//! slower timer that gives unproven peers a chance to bootstrap. A peer
//! that loses its peer-id (the paper's mobility failure, §3.4) re-enters as
//! unproven and must win the optimistic slot again.

use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

/// Opaque connection key used by the choker (assigned by the client).
pub type ConnKey = u64;

/// Choker timing and slot parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChokerConfig {
    /// Regular (tit-for-tat) unchoke slots.
    pub upload_slots: usize,
    /// How often the regular slots are recomputed.
    pub rechoke_interval: SimDuration,
    /// How often the optimistic slot rotates.
    pub optimistic_interval: SimDuration,
}

impl Default for ChokerConfig {
    fn default() -> Self {
        ChokerConfig {
            upload_slots: 4,
            rechoke_interval: SimDuration::from_secs(10),
            optimistic_interval: SimDuration::from_secs(30),
        }
    }
}

/// Per-peer inputs to a rechoke decision.
#[derive(Clone, Copy, Debug)]
pub struct PeerSnapshot {
    /// Connection key.
    pub key: ConnKey,
    /// Whether the peer wants data from us.
    pub interested: bool,
    /// Tit-for-tat credit: recent download rate from this peer (leeching)
    /// or upload rate to it (seeding), keyed by peer-id.
    pub credit: f64,
}

/// The set of peers that should be unchoked after a rechoke.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChokeDecision {
    /// Peers to unchoke (regular + optimistic).
    pub unchoked: Vec<ConnKey>,
    /// The optimistic member of `unchoked`, if any.
    pub optimistic: Option<ConnKey>,
}

/// Tit-for-tat choker state.
#[derive(Debug, Clone)]
pub struct Choker {
    config: ChokerConfig,
    last_rechoke: Option<SimTime>,
    last_optimistic: Option<SimTime>,
    optimistic: Option<ConnKey>,
    rechokes: u64,
}

impl Choker {
    /// Creates a choker.
    pub fn new(config: ChokerConfig) -> Self {
        Choker {
            config,
            last_rechoke: None,
            last_optimistic: None,
            optimistic: None,
            rechokes: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChokerConfig {
        &self.config
    }

    /// Number of rechoke rounds performed.
    pub fn rechokes(&self) -> u64 {
        self.rechokes
    }

    /// True when a rechoke is due at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        match self.last_rechoke {
            None => true,
            Some(t) => now.saturating_since(t) >= self.config.rechoke_interval,
        }
    }

    /// Forces the next `rechoke` call to run regardless of the timer
    /// (used when peers join/leave).
    pub fn invalidate(&mut self) {
        self.last_rechoke = None;
    }

    /// Staggers the optimistic-rotation schedule by treating `phase` as
    /// the time of a fictitious previous rotation. Without per-client
    /// phases, every peer in a simulated swarm rotates its optimistic
    /// slot at the same instants, which synchronizes grants and
    /// starvations in a way real swarms never do. Regular rechokes are
    /// unaffected (the first one still runs immediately).
    pub fn set_optimistic_phase(&mut self, phase: SimTime) {
        self.last_optimistic = Some(phase);
    }

    /// Computes the unchoke set at `now`. The caller applies the diff
    /// against its current choke flags.
    pub fn rechoke(
        &mut self,
        now: SimTime,
        peers: &[PeerSnapshot],
        rng: &mut SimRng,
    ) -> ChokeDecision {
        self.last_rechoke = Some(now);
        self.rechokes += 1;

        // Regular slots: interested peers by descending credit, ties by key
        // for determinism.
        let mut interested: Vec<&PeerSnapshot> = peers.iter().filter(|p| p.interested).collect();
        interested.sort_by(|a, b| {
            b.credit
                .partial_cmp(&a.credit)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.key.cmp(&b.key))
        });
        let regular: Vec<ConnKey> = interested
            .iter()
            .take(self.config.upload_slots)
            .map(|p| p.key)
            .collect();

        // Optimistic slot: rotate on its own timer among interested peers
        // outside the regular set.
        let rotate = match self.last_optimistic {
            None => true,
            Some(t) => now.saturating_since(t) >= self.config.optimistic_interval,
        };
        let optimistic_alive = self
            .optimistic
            .is_some_and(|k| peers.iter().any(|p| p.key == k && p.interested));
        // A retained optimistic peer whose credit climbed into the regular
        // set would leave the slot empty until the next rotation, shrinking
        // the effective unchoke set below upload_slots + 1; re-pick now.
        let promoted = self.optimistic.is_some_and(|k| regular.contains(&k));
        if rotate || !optimistic_alive || promoted {
            let pool: Vec<ConnKey> = interested
                .iter()
                .map(|p| p.key)
                .filter(|k| !regular.contains(k))
                .collect();
            self.optimistic = rng.choose(&pool).copied();
            if self.optimistic.is_some() {
                self.last_optimistic = Some(now);
            }
        }
        let optimistic = self.optimistic.filter(|k| !regular.contains(k));

        let mut unchoked = regular;
        if let Some(k) = optimistic {
            unchoked.push(k);
        }
        ChokeDecision {
            unchoked,
            optimistic,
        }
    }
}

use simnet::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for ChokerConfig {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.upload_slots);
        self.rechoke_interval.snap(w);
        self.optimistic_interval.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        ChokerConfig {
            upload_slots: r.get_usize(),
            rechoke_interval: Snap::unsnap(r),
            optimistic_interval: Snap::unsnap(r),
        }
    }
}

impl Snap for Choker {
    fn snap(&self, w: &mut SnapWriter) {
        self.config.snap(w);
        self.last_rechoke.snap(w);
        self.last_optimistic.snap(w);
        self.optimistic.snap(w);
        w.put_u64(self.rechokes);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        Choker {
            config: Snap::unsnap(r),
            last_rechoke: Snap::unsnap(r),
            last_optimistic: Snap::unsnap(r),
            optimistic: Snap::unsnap(r),
            rechokes: r.get_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(key: ConnKey, interested: bool, credit: f64) -> PeerSnapshot {
        PeerSnapshot {
            key,
            interested,
            credit,
        }
    }

    #[test]
    fn top_credits_win_regular_slots() {
        let mut ch = Choker::new(ChokerConfig {
            upload_slots: 2,
            ..Default::default()
        });
        let mut rng = SimRng::new(0);
        let peers = vec![
            peer(1, true, 10.0),
            peer(2, true, 30.0),
            peer(3, true, 20.0),
            peer(4, true, 5.0),
        ];
        let d = ch.rechoke(SimTime::ZERO, &peers, &mut rng);
        assert!(d.unchoked.contains(&2));
        assert!(d.unchoked.contains(&3));
        // Two regular + up to one optimistic.
        assert!(d.unchoked.len() <= 3);
    }

    #[test]
    fn uninterested_peers_never_unchoked() {
        let mut ch = Choker::new(ChokerConfig::default());
        let mut rng = SimRng::new(0);
        let peers = vec![peer(1, false, 100.0), peer(2, true, 1.0)];
        let d = ch.rechoke(SimTime::ZERO, &peers, &mut rng);
        assert!(!d.unchoked.contains(&1));
        assert!(d.unchoked.contains(&2));
    }

    #[test]
    fn optimistic_slot_gives_zero_credit_peers_a_chance() {
        let mut ch = Choker::new(ChokerConfig {
            upload_slots: 1,
            ..Default::default()
        });
        let mut rng = SimRng::new(5);
        let peers = vec![peer(1, true, 100.0), peer(2, true, 0.0), peer(3, true, 0.0)];
        let d = ch.rechoke(SimTime::ZERO, &peers, &mut rng);
        assert!(d.unchoked.contains(&1));
        let opt = d.optimistic.expect("optimistic slot filled");
        assert!(opt == 2 || opt == 3);
    }

    #[test]
    fn optimistic_rotates_on_slow_timer() {
        let cfg = ChokerConfig {
            upload_slots: 1,
            rechoke_interval: SimDuration::from_secs(10),
            optimistic_interval: SimDuration::from_secs(30),
        };
        let mut ch = Choker::new(cfg);
        let mut rng = SimRng::new(9);
        let peers: Vec<PeerSnapshot> = (0..10)
            .map(|k| peer(k, true, if k == 0 { 100.0 } else { 0.0 }))
            .collect();
        let first = ch
            .rechoke(SimTime::ZERO, &peers, &mut rng)
            .optimistic
            .unwrap();
        // Rechokes inside the optimistic interval keep the same pick.
        let second = ch
            .rechoke(SimTime::from_secs(10), &peers, &mut rng)
            .optimistic
            .unwrap();
        assert_eq!(first, second);
        // Eventually the rotation changes the pick (probabilistic but with
        // 9 candidates and many rotations, certain for this seed).
        let mut changed = false;
        for i in 1..20 {
            let t = SimTime::from_secs(30 * i);
            if ch.rechoke(t, &peers, &mut rng).optimistic.unwrap() != first {
                changed = true;
                break;
            }
        }
        assert!(changed, "optimistic never rotated");
    }

    #[test]
    fn due_respects_interval() {
        let mut ch = Choker::new(ChokerConfig::default());
        let mut rng = SimRng::new(0);
        assert!(ch.due(SimTime::ZERO));
        ch.rechoke(SimTime::ZERO, &[], &mut rng);
        assert!(!ch.due(SimTime::from_secs(5)));
        assert!(ch.due(SimTime::from_secs(10)));
        ch.invalidate();
        assert!(ch.due(SimTime::from_secs(10)));
    }

    #[test]
    fn slot_accounting_survives_churn() {
        // Seeded churn storm: peers join and leave between rechokes.
        // Across every round, slot accounting holds: at most slots+1
        // unchoked, no duplicates, nobody absent or uninterested, and
        // the optimistic member is never double-counted as regular.
        let slots = 3usize;
        let run = |seed: u64| -> Vec<ChokeDecision> {
            let mut ch = Choker::new(ChokerConfig {
                upload_slots: slots,
                ..ChokerConfig::default()
            });
            let mut rng = SimRng::new(seed);
            let mut decisions = Vec::new();
            for round in 0..200u64 {
                // Key space shifts with the round so peers churn in/out.
                let peers: Vec<PeerSnapshot> = (0..rng.range(0..12u64))
                    .map(|k| peer(round * 7 + k, rng.chance(0.7), rng.range(0.0f64..1e4)))
                    .collect();
                let d = ch.rechoke(SimTime::from_secs(10 * round), &peers, &mut rng);
                assert!(d.unchoked.len() <= slots + 1, "slot overflow: {d:?}");
                let mut sorted = d.unchoked.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), d.unchoked.len(), "duplicate unchoke");
                for k in &d.unchoked {
                    let p = peers.iter().find(|p| p.key == *k);
                    assert!(
                        p.is_some_and(|p| p.interested),
                        "unchoked a departed or uninterested peer {k}"
                    );
                }
                if let Some(opt) = d.optimistic {
                    assert!(d.unchoked.contains(&opt), "optimistic not unchoked");
                    // Regular slots = everything except the optimistic.
                    assert!(
                        d.unchoked.iter().filter(|&&k| k != opt).count() <= slots,
                        "optimistic double-counted as regular"
                    );
                }
                decisions.push(d);
            }
            decisions
        };
        // And the whole storm is deterministic per seed.
        assert_eq!(
            run(0xC4A0),
            run(0xC4A0),
            "churn storm must replay identically"
        );
    }

    #[test]
    fn full_interest_always_fills_all_slots_plus_optimistic() {
        // With more interested peers than slots, the unchoke set must be
        // exactly upload_slots + 1 every round — including the round where
        // the reigning optimistic peer's credit climbs into the regular
        // set (promotion used to leave the optimistic slot empty until the
        // next rotation).
        let slots = 2usize;
        let cfg = ChokerConfig {
            upload_slots: slots,
            rechoke_interval: SimDuration::from_secs(10),
            optimistic_interval: SimDuration::from_secs(30),
        };
        let mut ch = Choker::new(cfg);
        let mut rng = SimRng::new(11);
        let base = vec![
            peer(1, true, 50.0),
            peer(2, true, 40.0),
            peer(3, true, 1.0),
            peer(4, true, 1.0),
            peer(5, true, 1.0),
        ];
        let d = ch.rechoke(SimTime::ZERO, &base, &mut rng);
        assert_eq!(d.unchoked.len(), slots + 1, "round 0: {d:?}");
        let opt = d.optimistic.expect("optimistic filled under full interest");

        // Promote the optimistic peer into the top-2 before the rotation
        // timer fires (10s < 30s): still exactly slots + 1 unchoked, with a
        // fresh optimistic drawn from the remaining pool.
        let promoted: Vec<PeerSnapshot> = base
            .iter()
            .map(|p| {
                if p.key == opt {
                    peer(p.key, true, 100.0)
                } else {
                    *p
                }
            })
            .collect();
        let d = ch.rechoke(SimTime::from_secs(10), &promoted, &mut rng);
        assert_eq!(d.unchoked.len(), slots + 1, "promotion round: {d:?}");
        assert!(d.unchoked.contains(&opt), "promoted peer keeps a regular slot");
        let new_opt = d.optimistic.expect("slot re-picked after promotion");
        assert_ne!(new_opt, opt, "optimistic may not double as regular");

        // And every later round under full interest stays exactly full.
        for i in 2..30u64 {
            let d = ch.rechoke(SimTime::from_secs(10 * i), &promoted, &mut rng);
            assert_eq!(d.unchoked.len(), slots + 1, "round {i}: {d:?}");
        }
    }

    #[test]
    fn dead_optimistic_is_replaced_immediately() {
        let cfg = ChokerConfig {
            upload_slots: 1,
            ..Default::default()
        };
        let mut ch = Choker::new(cfg);
        let mut rng = SimRng::new(2);
        let peers = vec![peer(1, true, 10.0), peer(2, true, 0.0)];
        let d = ch.rechoke(SimTime::ZERO, &peers, &mut rng);
        assert_eq!(d.optimistic, Some(2));
        // Peer 2 disconnects; a new interested peer 3 appears.
        let peers = vec![peer(1, true, 10.0), peer(3, true, 0.0)];
        let d = ch.rechoke(SimTime::from_secs(10), &peers, &mut rng);
        assert_eq!(d.optimistic, Some(3), "stale optimistic replaced");
    }
}
