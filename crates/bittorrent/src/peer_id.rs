//! Peer identity.
//!
//! BitTorrent peers identify themselves with a 20-byte **peer-id**,
//! regenerated every time fetch tasks are (re)initiated. Peers key their
//! tit-for-tat bookkeeping on it — which is exactly why mobility hurts:
//! when a hand-off changes the IP address and the task restarts, a fresh
//! peer-id throws away all accumulated credit (paper §3.4). wP2P's
//! *identity retention* stores the peer-id per swarm and reuses it after a
//! hand-off (paper §4.2).

use crate::sha1::Sha1;
use simnet::addr::SimAddr;
use simnet::rng::SimRng;
use std::fmt;

/// A 20-byte BitTorrent peer identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub [u8; 20]);

/// How a client derives its peer-id on task (re)initiation; the paper
/// (§3.4) observes clients use either an address-derived or purely random
/// value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PeerIdStyle {
    /// A function of the current IP address and a random value — changes on
    /// every hand-off.
    AddressBased,
    /// A host-specific random value, regenerated per task initiation —
    /// also changes when mobility restarts the task.
    Random,
}

impl PeerId {
    /// Azureus-style client prefix used by generated ids ("-WP0100-").
    pub const CLIENT_PREFIX: &'static [u8; 8] = b"-WP0100-";

    /// Generates a peer-id in the given style.
    pub fn generate(style: PeerIdStyle, addr: SimAddr, rng: &mut SimRng) -> PeerId {
        let mut id = [0u8; 20];
        id[..8].copy_from_slice(Self::CLIENT_PREFIX);
        match style {
            PeerIdStyle::AddressBased => {
                let salt: u32 = rng.range(0..u32::MAX);
                let mut h = Sha1::new();
                h.update(&addr.0.to_be_bytes());
                h.update(&salt.to_be_bytes());
                id[8..].copy_from_slice(&h.finish().0[..12]);
            }
            PeerIdStyle::Random => {
                for b in &mut id[8..] {
                    *b = rng.range(0..=u8::MAX);
                }
            }
        }
        PeerId(id)
    }

    /// The client prefix bytes of this id.
    pub fn prefix(&self) -> &[u8] {
        &self.0[..8]
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PeerId({self})")
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Printable prefix, hex suffix.
        for &b in &self.0[..8] {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, ".")?;
            }
        }
        for &b in &self.0[8..14] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

impl AsRef<[u8]> for PeerId {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl simnet::snapshot::Snap for PeerId {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        w.put_bytes(&self.0);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        let v = r.get_byte_vec();
        PeerId(v.try_into().expect("snapshot: PeerId must be 20 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_have_client_prefix() {
        let mut rng = SimRng::new(1);
        let id = PeerId::generate(PeerIdStyle::Random, SimAddr(1), &mut rng);
        assert_eq!(id.prefix(), PeerId::CLIENT_PREFIX);
    }

    #[test]
    fn regeneration_changes_id() {
        // The paper's failure mode: each task re-initiation yields a new id.
        let mut rng = SimRng::new(2);
        let addr = SimAddr(77);
        let a = PeerId::generate(PeerIdStyle::Random, addr, &mut rng);
        let b = PeerId::generate(PeerIdStyle::Random, addr, &mut rng);
        assert_ne!(a, b);
        let c = PeerId::generate(PeerIdStyle::AddressBased, addr, &mut rng);
        let d = PeerId::generate(PeerIdStyle::AddressBased, addr, &mut rng);
        assert_ne!(c, d, "random salt changes even with a fixed address");
    }

    #[test]
    fn display_is_short_and_stable() {
        let id = PeerId(*b"-WP0100-abcdefghijkl");
        let s = id.to_string();
        assert!(s.starts_with("-WP0100-"));
        assert!(s.ends_with('…'));
    }
}
