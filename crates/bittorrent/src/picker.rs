//! Piece selection policies.
//!
//! The picker chooses which *piece* to start next, given the candidate set
//! (pieces the peer has, we lack, and are not already fully requested).
//! BitTorrent's default is **rarest-first** (paper §2.2): preferring the
//! piece held by the fewest swarm members propagates rare data fastest and
//! maximises what the local peer can later serve — but it leaves the
//! downloaded prefix full of holes, the failure mode the paper's Fig. 4
//! quantifies and wP2P's mobility-aware fetching (implemented in the
//! `wp2p` crate on top of this trait) repairs.

use simnet::rng::SimRng;
use simnet::time::SimDuration;

/// Information available to a picker at decision time.
#[derive(Debug)]
pub struct PickContext<'a> {
    /// How many connected peers have each piece (indexed by piece).
    pub availability: &'a [u32],
    /// Fraction of the torrent already downloaded, in `[0, 1]`.
    pub downloaded_fraction: f64,
    /// Time since the download started or the last network disconnection —
    /// the "network stability" signal the paper's §4.3 uses.
    pub stable_for: SimDuration,
}

/// A piece-selection policy.
///
/// `candidates` is non-empty, sorted ascending, and pre-filtered by the
/// client (peer has the piece; we do not; not fully requested). The picker
/// returns one of the candidates.
pub trait PiecePicker: std::fmt::Debug + Send {
    /// Chooses the next piece to begin downloading.
    fn pick(&mut self, candidates: &[u32], ctx: &PickContext<'_>, rng: &mut SimRng) -> Option<u32>;

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// Rarest-first with uniformly random tie-breaking (the BitTorrent
/// default).
#[derive(Debug, Clone, Default)]
pub struct RarestFirst;

impl PiecePicker for RarestFirst {
    fn pick(&mut self, candidates: &[u32], ctx: &PickContext<'_>, rng: &mut SimRng) -> Option<u32> {
        let min_avail = candidates
            .iter()
            .map(|&p| ctx.availability.get(p as usize).copied().unwrap_or(0))
            .min()?;
        let rarest: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|&p| ctx.availability.get(p as usize).copied().unwrap_or(0) == min_avail)
            .collect();
        rng.choose(&rarest).copied()
    }

    fn name(&self) -> &'static str {
        "rarest-first"
    }
}

/// Strictly in-order selection (maximises the playable prefix, minimises
/// usefulness to the swarm).
#[derive(Debug, Clone, Default)]
pub struct Sequential;

impl PiecePicker for Sequential {
    fn pick(
        &mut self,
        candidates: &[u32],
        _ctx: &PickContext<'_>,
        _rng: &mut SimRng,
    ) -> Option<u32> {
        candidates.first().copied()
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// Uniformly random selection (first-generation clients; also a useful
/// baseline).
#[derive(Debug, Clone, Default)]
pub struct RandomPick;

impl PiecePicker for RandomPick {
    fn pick(
        &mut self,
        candidates: &[u32],
        _ctx: &PickContext<'_>,
        rng: &mut SimRng,
    ) -> Option<u32> {
        rng.choose(candidates).copied()
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// A fixed probabilistic blend: rarest-first with probability `p_rarest`,
/// sequential otherwise. The adaptive schedule of wP2P's mobility-aware
/// fetching lives in the `wp2p` crate; this fixed version is the building
/// block and a baseline.
#[derive(Debug, Clone)]
pub struct FixedMix {
    /// Probability of choosing rarest-first on each decision.
    pub p_rarest: f64,
    rarest: RarestFirst,
    sequential: Sequential,
}

impl FixedMix {
    /// Creates a blend.
    ///
    /// # Panics
    ///
    /// Panics unless `p_rarest` is within `[0, 1]`.
    pub fn new(p_rarest: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_rarest), "probability out of range");
        FixedMix {
            p_rarest,
            rarest: RarestFirst,
            sequential: Sequential,
        }
    }
}

impl PiecePicker for FixedMix {
    fn pick(&mut self, candidates: &[u32], ctx: &PickContext<'_>, rng: &mut SimRng) -> Option<u32> {
        if rng.chance(self.p_rarest) {
            self.rarest.pick(candidates, ctx, rng)
        } else {
            self.sequential.pick(candidates, ctx, rng)
        }
    }

    fn name(&self) -> &'static str {
        "fixed-mix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(avail: &'a [u32]) -> PickContext<'a> {
        PickContext {
            availability: avail,
            downloaded_fraction: 0.0,
            stable_for: SimDuration::ZERO,
        }
    }

    #[test]
    fn rarest_first_picks_minimum_availability() {
        let avail = vec![5, 1, 3, 1, 9];
        let mut rng = SimRng::new(0);
        let mut picker = RarestFirst;
        for _ in 0..50 {
            let p = picker
                .pick(&[0, 1, 2, 3, 4], &ctx(&avail), &mut rng)
                .unwrap();
            assert!(p == 1 || p == 3, "picked {p}");
        }
    }

    #[test]
    fn rarest_first_tie_break_is_uniformish() {
        let avail = vec![1, 1, 1, 1];
        let mut rng = SimRng::new(7);
        let mut picker = RarestFirst;
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            let p = picker.pick(&[0, 1, 2, 3], &ctx(&avail), &mut rng).unwrap();
            counts[p as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn rarest_first_tie_break_is_seed_deterministic() {
        // Same seed ⇒ the exact same pick sequence over an evolving
        // availability vector; a different seed diverges somewhere.
        let run = |seed: u64| -> Vec<u32> {
            let mut avail = vec![3u32, 1, 1, 4, 1, 1, 2, 1];
            let cands: Vec<u32> = (0..avail.len() as u32).collect();
            let mut rng = SimRng::new(seed);
            let mut picker = RarestFirst;
            (0..64)
                .map(|i| {
                    let p = picker.pick(&cands, &ctx(&avail), &mut rng).unwrap();
                    // Mutate availability so ties shift between rounds.
                    let n = avail.len();
                    avail[(i * 5) % n] += 1;
                    p
                })
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42), run(43), "tie-break ignores the seed");
    }

    #[test]
    fn rarest_first_tie_break_stays_among_rarest() {
        // Under random availability churn, every pick is one of the
        // currently-rarest candidates — the tie-break never leaks a
        // more-common piece in.
        let mut rng = SimRng::new(0xACE);
        let mut avail = vec![2u32; 16];
        let cands: Vec<u32> = (0..16).collect();
        let mut picker = RarestFirst;
        for _ in 0..500 {
            let bump = rng.range(0..16usize);
            avail[bump] = avail[bump].saturating_add(1);
            let p = picker.pick(&cands, &ctx(&avail), &mut rng).unwrap();
            let min = *avail.iter().min().unwrap();
            assert_eq!(avail[p as usize], min, "picked non-rarest piece {p}");
        }
    }

    #[test]
    fn rarest_first_respects_candidates() {
        // Piece 0 is globally rarest but not a candidate.
        let avail = vec![0, 5, 2];
        let mut rng = SimRng::new(1);
        let mut picker = RarestFirst;
        assert_eq!(picker.pick(&[1, 2], &ctx(&avail), &mut rng), Some(2));
    }

    #[test]
    fn sequential_is_in_order() {
        let avail = vec![1; 10];
        let mut rng = SimRng::new(0);
        let mut picker = Sequential;
        assert_eq!(picker.pick(&[3, 5, 9], &ctx(&avail), &mut rng), Some(3));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let avail = vec![1; 4];
        let mut rng = SimRng::new(0);
        assert_eq!(RarestFirst.pick(&[], &ctx(&avail), &mut rng), None);
        assert_eq!(Sequential.pick(&[], &ctx(&avail), &mut rng), None);
        assert_eq!(RandomPick.pick(&[], &ctx(&avail), &mut rng), None);
    }

    #[test]
    fn fixed_mix_blends() {
        // availability makes rarest pick piece 9; sequential picks 0.
        let mut avail = vec![5; 10];
        avail[9] = 1;
        let cands: Vec<u32> = (0..10).collect();
        let mut rng = SimRng::new(3);
        let mut picker = FixedMix::new(0.3);
        let mut rare = 0;
        let mut seq = 0;
        for _ in 0..2000 {
            match picker.pick(&cands, &ctx(&avail), &mut rng) {
                Some(9) => rare += 1,
                Some(0) => seq += 1,
                other => panic!("unexpected pick {other:?}"),
            }
        }
        let frac = rare as f64 / 2000.0;
        assert!((0.25..0.35).contains(&frac), "rarest fraction {frac}");
        assert!(seq > 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn fixed_mix_validates_probability() {
        let _ = FixedMix::new(1.5);
    }
}
