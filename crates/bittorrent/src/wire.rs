//! The peer wire protocol (BEP 3): handshake and length-prefixed messages.
//!
//! Messages are modelled structurally; block payloads are carried *by
//! reference* ([`BlockRef`]) so large simulated transfers never allocate
//! content. [`Message::wire_len`] reports the exact on-wire size (length
//! prefix + id + fields + payload) — the number the links and TCP see.
//! A real byte codec ([`encode`]/[`decode`]) is also provided and is
//! byte-compatible with the BitTorrent specification; the `piece` payload
//! bytes are supplied/returned separately.

use crate::bitfield::Bitfield;
use crate::metainfo::InfoHash;
use crate::peer_id::PeerId;
use simnet::addr::SimAddr;
use std::fmt;

/// Identifies one block (sub-piece): the request/transfer unit. Clients
/// conventionally use 16 KB blocks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockRef {
    /// Piece index.
    pub piece: u32,
    /// Byte offset within the piece.
    pub offset: u32,
    /// Block length in bytes.
    pub len: u32,
}

/// The conventional block (sub-piece) size: 16 KB.
pub const BLOCK_SIZE: u32 = 16 * 1024;

/// Fixed size of the BitTorrent handshake on the wire.
pub const HANDSHAKE_LEN: u32 = 68;

/// A peer wire message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Message {
    /// The 68-byte connection preamble (protocol string, info-hash,
    /// peer-id). Not length-prefixed on the real wire; modelled as a
    /// message for uniformity.
    Handshake {
        /// Swarm being joined.
        info_hash: InfoHash,
        /// The sender's identity.
        peer_id: PeerId,
    },
    /// Zero-length keepalive.
    KeepAlive,
    /// The sender will not fulfil requests.
    Choke,
    /// The sender will fulfil requests.
    Unchoke,
    /// The sender wants pieces the receiver has.
    Interested,
    /// The sender no longer wants anything.
    NotInterested,
    /// The sender completed and verified a piece.
    Have {
        /// The completed piece index.
        index: u32,
    },
    /// The sender's full piece map, sent once after the handshake.
    Bitfield(Bitfield),
    /// Request for one block.
    Request(BlockRef),
    /// One block of data. Payload bytes travel out of band in the
    /// simulation; `wire_len` accounts for them.
    Piece(BlockRef),
    /// Cancels a previous request (endgame).
    Cancel(BlockRef),
    /// Peer exchange: gossips known-good swarm addresses with a
    /// per-entry age (seconds since the sender last verified the
    /// address live). The discovery fallback when the tracker tier is
    /// dark — modelled on ut_pex but carried as a first-class message
    /// (id 20) instead of an extension-protocol envelope.
    Pex {
        /// `(address, age in seconds)` entries, sender-sorted by address.
        peers: Vec<(SimAddr, u32)>,
    },
}

impl Message {
    /// Exact on-wire size in bytes, including the 4-byte length prefix
    /// (or the fixed 68 bytes for the handshake).
    pub fn wire_len(&self) -> u32 {
        match self {
            Message::Handshake { .. } => HANDSHAKE_LEN,
            Message::KeepAlive => 4,
            Message::Choke | Message::Unchoke | Message::Interested | Message::NotInterested => 5,
            Message::Have { .. } => 9,
            Message::Bitfield(bf) => 5 + bf.byte_len(),
            Message::Request(_) | Message::Cancel(_) => 17,
            Message::Piece(b) => 13 + b.len,
            // prefix + id + u32 count + 8 bytes (addr + age) per entry.
            Message::Pex { peers } => 9 + 8 * peers.len() as u32,
        }
    }

    /// True for messages that carry piece payload.
    pub fn is_piece(&self) -> bool {
        matches!(self, Message::Piece(_))
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Handshake { info_hash, peer_id } => {
                write!(f, "handshake({info_hash}, {peer_id})")
            }
            Message::KeepAlive => write!(f, "keepalive"),
            Message::Choke => write!(f, "choke"),
            Message::Unchoke => write!(f, "unchoke"),
            Message::Interested => write!(f, "interested"),
            Message::NotInterested => write!(f, "not-interested"),
            Message::Have { index } => write!(f, "have({index})"),
            Message::Bitfield(bf) => write!(f, "bitfield({}/{})", bf.count(), bf.len()),
            Message::Request(b) => write!(f, "request({}, {}, {})", b.piece, b.offset, b.len),
            Message::Piece(b) => write!(f, "piece({}, {}, {})", b.piece, b.offset, b.len),
            Message::Cancel(b) => write!(f, "cancel({}, {}, {})", b.piece, b.offset, b.len),
            Message::Pex { peers } => write!(f, "pex({} peers)", peers.len()),
        }
    }
}

/// Codec errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Fewer bytes than a complete message.
    Truncated,
    /// Unknown message id.
    UnknownId(u8),
    /// Length prefix inconsistent with the message id.
    BadLength {
        /// Message id whose body had the wrong size.
        id: u8,
        /// The offending declared length.
        len: u32,
    },
    /// Handshake protocol string mismatch.
    BadProtocol,
    /// A bitfield with spare bits set or the wrong byte count.
    BadBitfield,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::UnknownId(id) => write!(f, "unknown message id {id}"),
            WireError::BadLength { id, len } => {
                write!(f, "bad length {len} for message id {id}")
            }
            WireError::BadProtocol => write!(f, "bad handshake protocol string"),
            WireError::BadBitfield => write!(f, "malformed bitfield"),
        }
    }
}

impl std::error::Error for WireError {}

const PROTOCOL: &[u8; 19] = b"BitTorrent protocol";

/// Encodes a handshake to its fixed 68-byte wire form.
pub fn encode_handshake(info_hash: InfoHash, peer_id: PeerId) -> [u8; 68] {
    let mut out = [0u8; 68];
    out[0] = 19;
    out[1..20].copy_from_slice(PROTOCOL);
    // 8 reserved bytes stay zero.
    out[28..48].copy_from_slice(&info_hash.0);
    out[48..68].copy_from_slice(&peer_id.0);
    out
}

/// Decodes a 68-byte handshake.
///
/// # Errors
///
/// [`WireError::Truncated`] if shorter than 68 bytes, or
/// [`WireError::BadProtocol`] on a protocol-string mismatch.
pub fn decode_handshake(buf: &[u8]) -> Result<(InfoHash, PeerId), WireError> {
    if buf.len() < 68 {
        return Err(WireError::Truncated);
    }
    if buf[0] != 19 || &buf[1..20] != PROTOCOL {
        return Err(WireError::BadProtocol);
    }
    let mut ih = [0u8; 20];
    ih.copy_from_slice(&buf[28..48]);
    let mut pid = [0u8; 20];
    pid.copy_from_slice(&buf[48..68]);
    Ok((InfoHash(ih), PeerId(pid)))
}

/// Encodes a (non-handshake) message; `payload` supplies the block bytes
/// for `Piece` and must match `BlockRef::len`.
///
/// # Panics
///
/// Panics when encoding a `Piece` whose payload length disagrees with its
/// `BlockRef`, or a `Handshake` (use [`encode_handshake`]).
pub fn encode(msg: &Message, payload: Option<&[u8]>, out: &mut Vec<u8>) {
    fn prefix(out: &mut Vec<u8>, len: u32, id: u8) {
        out.extend_from_slice(&len.to_be_bytes());
        out.push(id);
    }
    match msg {
        Message::Handshake { .. } => panic!("use encode_handshake for handshakes"),
        Message::KeepAlive => out.extend_from_slice(&0u32.to_be_bytes()),
        Message::Choke => prefix(out, 1, 0),
        Message::Unchoke => prefix(out, 1, 1),
        Message::Interested => prefix(out, 1, 2),
        Message::NotInterested => prefix(out, 1, 3),
        Message::Have { index } => {
            prefix(out, 5, 4);
            out.extend_from_slice(&index.to_be_bytes());
        }
        Message::Bitfield(bf) => {
            prefix(out, 1 + bf.byte_len(), 5);
            out.extend_from_slice(bf.as_bytes());
        }
        Message::Request(b) => {
            prefix(out, 13, 6);
            out.extend_from_slice(&b.piece.to_be_bytes());
            out.extend_from_slice(&b.offset.to_be_bytes());
            out.extend_from_slice(&b.len.to_be_bytes());
        }
        Message::Piece(b) => {
            let data = payload.expect("piece payload required");
            assert_eq!(data.len() as u32, b.len, "payload length mismatch");
            prefix(out, 9 + b.len, 7);
            out.extend_from_slice(&b.piece.to_be_bytes());
            out.extend_from_slice(&b.offset.to_be_bytes());
            out.extend_from_slice(data);
        }
        Message::Cancel(b) => {
            prefix(out, 13, 8);
            out.extend_from_slice(&b.piece.to_be_bytes());
            out.extend_from_slice(&b.offset.to_be_bytes());
            out.extend_from_slice(&b.len.to_be_bytes());
        }
        Message::Pex { peers } => {
            let count = u32::try_from(peers.len()).expect("pex entry count fits u32");
            prefix(out, 5 + 8 * count, 20);
            out.extend_from_slice(&count.to_be_bytes());
            for &(addr, age) in peers {
                out.extend_from_slice(&addr.0.to_be_bytes());
                out.extend_from_slice(&age.to_be_bytes());
            }
        }
    }
}

/// Decoded message plus how many input bytes it consumed; `Piece` also
/// yields the payload byte range within the input.
#[derive(Debug, PartialEq, Eq)]
pub struct Decoded {
    /// The message.
    pub message: Message,
    /// Bytes consumed from the input.
    pub consumed: usize,
    /// For `Piece`: `(start, end)` of the payload within the input.
    pub payload: Option<(usize, usize)>,
}

/// Decodes one message from the front of `buf`; `num_pieces` sizes
/// bitfield validation.
///
/// Returns `Ok(None)` when more bytes are needed (stream reassembly).
///
/// # Errors
///
/// Returns a [`WireError`] for malformed input.
pub fn decode(buf: &[u8], num_pieces: u32) -> Result<Option<Decoded>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if buf.len() < 4 + len {
        return Ok(None);
    }
    if len == 0 {
        return Ok(Some(Decoded {
            message: Message::KeepAlive,
            consumed: 4,
            payload: None,
        }));
    }
    let id = buf[4];
    let body = &buf[5..4 + len];
    let read_u32 =
        |b: &[u8], at: usize| u32::from_be_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]]);
    let need = |n: usize| -> Result<(), WireError> {
        if body.len() != n {
            Err(WireError::BadLength {
                id,
                len: len as u32,
            })
        } else {
            Ok(())
        }
    };
    let message = match id {
        0 => {
            need(0)?;
            Message::Choke
        }
        1 => {
            need(0)?;
            Message::Unchoke
        }
        2 => {
            need(0)?;
            Message::Interested
        }
        3 => {
            need(0)?;
            Message::NotInterested
        }
        4 => {
            need(4)?;
            Message::Have {
                index: read_u32(body, 0),
            }
        }
        5 => {
            let bf = Bitfield::from_bytes(body, num_pieces).ok_or(WireError::BadBitfield)?;
            Message::Bitfield(bf)
        }
        6 | 8 => {
            need(12)?;
            let b = BlockRef {
                piece: read_u32(body, 0),
                offset: read_u32(body, 4),
                len: read_u32(body, 8),
            };
            if id == 6 {
                Message::Request(b)
            } else {
                Message::Cancel(b)
            }
        }
        7 => {
            if body.len() < 8 {
                return Err(WireError::BadLength {
                    id,
                    len: len as u32,
                });
            }
            let b = BlockRef {
                piece: read_u32(body, 0),
                offset: read_u32(body, 4),
                len: (body.len() - 8) as u32,
            };
            return Ok(Some(Decoded {
                message: Message::Piece(b),
                consumed: 4 + len,
                payload: Some((13, 4 + len)),
            }));
        }
        20 => {
            if body.len() < 4 {
                return Err(WireError::BadLength {
                    id,
                    len: len as u32,
                });
            }
            let count = read_u32(body, 0) as usize;
            if body.len() != 4 + 8 * count {
                return Err(WireError::BadLength {
                    id,
                    len: len as u32,
                });
            }
            let peers = (0..count)
                .map(|i| {
                    let at = 4 + 8 * i;
                    (SimAddr(read_u32(body, at)), read_u32(body, at + 4))
                })
                .collect();
            Message::Pex { peers }
        }
        other => return Err(WireError::UnknownId(other)),
    };
    Ok(Some(Decoded {
        message,
        consumed: 4 + len,
        payload: None,
    }))
}

/// A message plus its owned `Piece` payload, as yielded by
/// [`MessageReader::next_message`].
pub type ReadMessage = (Message, Option<Vec<u8>>);

/// A streaming decoder: feed arbitrary byte chunks (as TCP delivers
/// them), pop complete messages. Payload bytes of `Piece` messages are
/// returned owned.
#[derive(Debug, Default)]
pub struct MessageReader {
    buf: Vec<u8>,
    num_pieces: u32,
}

impl MessageReader {
    /// Creates a reader; `num_pieces` sizes bitfield validation.
    pub fn new(num_pieces: u32) -> Self {
        MessageReader {
            buf: Vec::new(),
            num_pieces,
        }
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete message, if one is buffered.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the stream is malformed; the reader is
    /// then poisoned (callers should drop the connection, as real clients
    /// do).
    pub fn next_message(&mut self) -> Result<Option<ReadMessage>, WireError> {
        match decode(&self.buf, self.num_pieces)? {
            None => Ok(None),
            Some(d) => {
                let payload = d.payload.map(|(s, e)| self.buf[s..e].to_vec());
                self.buf.drain(..d.consumed);
                Ok(Some((d.message, payload)))
            }
        }
    }
}

use simnet::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for BlockRef {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.piece);
        w.put_u32(self.offset);
        w.put_u32(self.len);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        BlockRef {
            piece: r.get_u32(),
            offset: r.get_u32(),
            len: r.get_u32(),
        }
    }
}

impl Snap for Message {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Message::Handshake { info_hash, peer_id } => {
                w.put_u8(0);
                info_hash.snap(w);
                peer_id.snap(w);
            }
            Message::KeepAlive => w.put_u8(1),
            Message::Choke => w.put_u8(2),
            Message::Unchoke => w.put_u8(3),
            Message::Interested => w.put_u8(4),
            Message::NotInterested => w.put_u8(5),
            Message::Have { index } => {
                w.put_u8(6);
                w.put_u32(*index);
            }
            Message::Bitfield(bf) => {
                w.put_u8(7);
                bf.snap(w);
            }
            Message::Request(b) => {
                w.put_u8(8);
                b.snap(w);
            }
            Message::Piece(b) => {
                w.put_u8(9);
                b.snap(w);
            }
            Message::Cancel(b) => {
                w.put_u8(10);
                b.snap(w);
            }
            Message::Pex { peers } => {
                w.put_u8(11);
                w.put_usize(peers.len());
                for (addr, age) in peers {
                    addr.snap(w);
                    w.put_u32(*age);
                }
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        match r.get_u8() {
            0 => Message::Handshake {
                info_hash: Snap::unsnap(r),
                peer_id: Snap::unsnap(r),
            },
            1 => Message::KeepAlive,
            2 => Message::Choke,
            3 => Message::Unchoke,
            4 => Message::Interested,
            5 => Message::NotInterested,
            6 => Message::Have { index: r.get_u32() },
            7 => Message::Bitfield(Snap::unsnap(r)),
            8 => Message::Request(Snap::unsnap(r)),
            9 => Message::Piece(Snap::unsnap(r)),
            10 => Message::Cancel(Snap::unsnap(r)),
            11 => {
                let n = r.get_usize();
                let peers = (0..n)
                    .map(|_| {
                        let addr: SimAddr = Snap::unsnap(r);
                        (addr, r.get_u32())
                    })
                    .collect();
                Message::Pex { peers }
            }
            t => panic!("unknown Message tag {t} in snapshot"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message, payload: Option<&[u8]>, num_pieces: u32) {
        let mut buf = Vec::new();
        encode(&msg, payload, &mut buf);
        assert_eq!(buf.len() as u32, msg.wire_len(), "wire_len for {msg}");
        let dec = decode(&buf, num_pieces).unwrap().expect("complete");
        assert_eq!(dec.message, msg);
        assert_eq!(dec.consumed, buf.len());
        if let Some((s, e)) = dec.payload {
            assert_eq!(&buf[s..e], payload.unwrap());
        }
    }

    #[test]
    fn roundtrips_all_messages() {
        roundtrip(Message::KeepAlive, None, 8);
        roundtrip(Message::Choke, None, 8);
        roundtrip(Message::Unchoke, None, 8);
        roundtrip(Message::Interested, None, 8);
        roundtrip(Message::NotInterested, None, 8);
        roundtrip(Message::Have { index: 1234 }, None, 8);
        let mut bf = Bitfield::new(8);
        bf.set(2);
        roundtrip(Message::Bitfield(bf), None, 8);
        let b = BlockRef {
            piece: 3,
            offset: 16384,
            len: 5,
        };
        roundtrip(Message::Request(b), None, 8);
        roundtrip(Message::Cancel(b), None, 8);
        roundtrip(Message::Piece(b), Some(b"hello"), 8);
        roundtrip(Message::Pex { peers: Vec::new() }, None, 8);
        roundtrip(
            Message::Pex {
                peers: vec![(SimAddr(11), 0), (SimAddr(42), 600)],
            },
            None,
            8,
        );
    }

    #[test]
    fn pex_rejects_inconsistent_count() {
        // Declares 2 entries but carries bytes for 1.
        let mut buf = Vec::new();
        encode(
            &Message::Pex {
                peers: vec![(SimAddr(7), 30)],
            },
            None,
            &mut buf,
        );
        buf[8] = 2; // count low byte (big-endian u32 at offset 5..9)
        assert!(matches!(
            decode(&buf, 8),
            Err(WireError::BadLength { id: 20, .. })
        ));
    }

    #[test]
    fn handshake_roundtrip() {
        let ih = InfoHash([7u8; 20]);
        let pid = PeerId([9u8; 20]);
        let bytes = encode_handshake(ih, pid);
        assert_eq!(bytes.len() as u32, HANDSHAKE_LEN);
        let (ih2, pid2) = decode_handshake(&bytes).unwrap();
        assert_eq!(ih2, ih);
        assert_eq!(pid2, pid);
    }

    #[test]
    fn handshake_rejects_bad_protocol() {
        let mut bytes = encode_handshake(InfoHash([0; 20]), PeerId([0; 20]));
        bytes[3] ^= 0xFF;
        assert_eq!(decode_handshake(&bytes), Err(WireError::BadProtocol));
        assert_eq!(decode_handshake(&bytes[..10]), Err(WireError::Truncated));
    }

    #[test]
    fn partial_input_returns_none() {
        let mut buf = Vec::new();
        encode(&Message::Have { index: 5 }, None, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode(&buf[..cut], 8).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn rejects_unknown_id_and_bad_lengths() {
        // id 99 with empty body.
        let buf = [0, 0, 0, 1, 99];
        assert_eq!(decode(&buf, 8), Err(WireError::UnknownId(99)));
        // `have` with a 2-byte body.
        let buf = [0, 0, 0, 3, 4, 1, 2];
        assert!(matches!(
            decode(&buf, 8),
            Err(WireError::BadLength { id: 4, .. })
        ));
    }

    #[test]
    fn wire_len_matches_spec_sizes() {
        assert_eq!(Message::KeepAlive.wire_len(), 4);
        assert_eq!(Message::Choke.wire_len(), 5);
        assert_eq!(Message::Have { index: 0 }.wire_len(), 9);
        let b = BlockRef {
            piece: 0,
            offset: 0,
            len: BLOCK_SIZE,
        };
        assert_eq!(Message::Request(b).wire_len(), 17);
        assert_eq!(Message::Piece(b).wire_len(), 13 + BLOCK_SIZE);
    }

    #[test]
    fn message_reader_reassembles_byte_by_byte() {
        let mut wire = Vec::new();
        encode(&Message::Interested, None, &mut wire);
        let b = BlockRef {
            piece: 1,
            offset: 0,
            len: 4,
        };
        encode(&Message::Piece(b), Some(b"data"), &mut wire);
        encode(&Message::Have { index: 9 }, None, &mut wire);

        let mut reader = MessageReader::new(16);
        let mut got = Vec::new();
        for byte in wire {
            reader.feed(&[byte]);
            while let Some((msg, payload)) = reader.next_message().unwrap() {
                got.push((msg, payload));
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, Message::Interested);
        assert_eq!(got[1].0, Message::Piece(b));
        assert_eq!(got[1].1.as_deref(), Some(&b"data"[..]));
        assert_eq!(got[2].0, Message::Have { index: 9 });
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn message_reader_reports_stream_corruption() {
        let mut reader = MessageReader::new(8);
        reader.feed(&[0, 0, 0, 1, 99]); // unknown id
        assert_eq!(reader.next_message(), Err(WireError::UnknownId(99)));
    }

    #[test]
    fn two_messages_stream_decode() {
        let mut buf = Vec::new();
        encode(&Message::Interested, None, &mut buf);
        encode(&Message::Have { index: 3 }, None, &mut buf);
        let first = decode(&buf, 8).unwrap().unwrap();
        assert_eq!(first.message, Message::Interested);
        let second = decode(&buf[first.consumed..], 8).unwrap().unwrap();
        assert_eq!(second.message, Message::Have { index: 3 });
    }
}
