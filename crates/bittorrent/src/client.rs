//! The BitTorrent client session: one torrent on one host.
//!
//! Sans-IO like the TCP endpoint: the embedding world delivers transport
//! events ([`Client::on_connected`], [`Client::on_message`], …) and wall
//! ticks ([`Client::on_tick`]), and drains [`Action`]s (connect, send,
//! announce) to execute on whatever transport it runs — packet-level TCP or
//! the fluid flow model.
//!
//! The session implements the protocol behaviours the paper's experiments
//! measure:
//!
//! * interest tracking and the request pipeline over 16 KB blocks,
//! * tit-for-tat choking with credit keyed by **peer-id** (so identity
//!   loss after a hand-off really does reset a peer's standing),
//! * rarest-first (or any [`PiecePicker`]) piece selection with
//!   partial-piece priority and bounded endgame duplication,
//! * periodic tracker announces and address bookkeeping with dial backoff,
//! * optional upload rate caps (the knob LIHD turns) and an
//!   upload-disable switch (the paper's "no uploading" arms).

use crate::bitfield::Bitfield;
use crate::choker::{Choker, ChokerConfig, ConnKey, PeerSnapshot};
use crate::lifecycle::{ConnState, ResilienceConfig};
use crate::metainfo::InfoHash;
use crate::peer_id::PeerId;
use crate::picker::{PickContext, PiecePicker, RarestFirst};
use crate::progress::{BlockOutcome, TorrentProgress};
use crate::rate::{RateEstimator, TokenBucket};
use crate::strategy::{ClientStrategy, Honest, ServicePolicy, StrategyKind, StrategyPeer};
use crate::tracker::{AnnounceEvent, AnnounceResponse};
use crate::wire::{BlockRef, Message};
use metrics::handle::MetricsHandle;
use metrics::registry::Counter;
use simnet::addr::SimAddr;
use simnet::hash::FastHashMap;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Floor for early re-announces until the tracker's first response
/// supplies a `min interval` of its own.
const DEFAULT_MIN_REANNOUNCE: SimDuration = SimDuration::from_secs(60);

/// Peer-exchange (PEX) gossip knobs — the third rung of the discovery
/// degradation ladder. Disabled by default: a client with PEX off never
/// emits a [`Message::Pex`], ignores any it receives, and keeps no
/// gossip state, so legacy runs are byte-identical.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PexConfig {
    /// Master switch.
    pub enabled: bool,
    /// How often a round of PEX messages goes out to every peer.
    pub gossip_interval: SimDuration,
    /// Most entries per PEX message (freshest win).
    pub max_entries: usize,
    /// Entries older than this are pruned locally and dropped on
    /// receipt — the staleness horizon that keeps a moved mobile host's
    /// abandoned address from circulating forever.
    pub max_age: SimDuration,
}

impl Default for PexConfig {
    fn default() -> Self {
        PexConfig {
            enabled: false,
            gossip_interval: SimDuration::from_secs(60),
            max_entries: 25,
            max_age: SimDuration::from_secs(600),
        }
    }
}

/// Client tunables.
#[derive(Debug)]
pub struct ClientConfig {
    /// Maximum simultaneous peer connections.
    pub max_connections: usize,
    /// Outstanding block requests per peer (count cap).
    pub request_pipeline: usize,
    /// Outstanding request volume per peer (byte cap). Binds before the
    /// count cap when blocks are large (piece-sized fluid transfers):
    /// without it, a slow peer accumulates minutes of queued requests
    /// that expire before service and churn the whole swarm.
    pub request_pipeline_bytes: u64,
    /// Choker parameters.
    pub choker: ChokerConfig,
    /// Outstanding requests older than this are abandoned and requeued.
    pub request_timeout: SimDuration,
    /// Stay in the swarm as a seed after completing.
    pub keep_seeding: bool,
    /// Upload cap in bytes/second (`None` = unlimited). LIHD adjusts this.
    pub upload_limit: Option<f64>,
    /// Master switch for serving data (the "no uploading" experiment arms
    /// set this to `false`; requests are then never honoured).
    pub allow_upload: bool,
    /// Piece selection policy.
    pub picker: Box<dyn PiecePicker>,
    /// Dial backoff base after a failed connection attempt.
    pub dial_backoff: SimDuration,
    /// Whether a seed initiates connections. Real clients dial only when
    /// they *want* pieces, so a seed just listens — which is exactly why a
    /// mobile seed that changes address goes dark until leeches re-poll
    /// the tracker (paper §3.5). Role reversal sets this to `true`.
    pub dial_while_seeding: bool,
    /// Connection-lifecycle resilience knobs. The default is unarmed:
    /// the legacy fixed dial backoff, no keepalive or snub machinery.
    /// [`ResilienceConfig::armed`] switches the client to seeded
    /// exponential backoff with jitter, keepalive timeouts, and snub
    /// detection.
    pub resilience: ResilienceConfig,
    /// Behaviour strategy (the population zoo). [`Honest`] is the
    /// protocol-faithful baseline with every hook an identity.
    pub strategy: Box<dyn ClientStrategy>,
    /// How a seed's service order weighs relationship history — the
    /// knob deciding who serves freshly re-initiated mobile peers.
    pub service_policy: ServicePolicy,
    /// Peer-exchange gossip (tracker-free discovery fallback).
    pub pex: PexConfig,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_connections: 50,
            request_pipeline: 8,
            request_pipeline_bytes: 512 * 1024,
            choker: ChokerConfig::default(),
            request_timeout: SimDuration::from_secs(90),
            keep_seeding: true,
            upload_limit: None,
            allow_upload: true,
            picker: Box::new(RarestFirst),
            dial_backoff: SimDuration::from_secs(30),
            dial_while_seeding: false,
            resilience: ResilienceConfig::default(),
            strategy: Box::new(Honest),
            service_policy: ServicePolicy::Standing,
            pex: PexConfig::default(),
        }
    }
}

/// An instruction from the client to its transport/world.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Dial `addr`; report via `on_connected` / `on_conn_failed` with this
    /// key.
    Connect {
        /// Client-assigned connection key.
        conn: ConnKey,
        /// Address to dial.
        addr: SimAddr,
    },
    /// Send a message on an established connection.
    Send {
        /// Connection key.
        conn: ConnKey,
        /// The message (payload bytes travel as lengths).
        msg: Message,
    },
    /// Close a connection.
    Close {
        /// Connection key.
        conn: ConnKey,
    },
    /// Announce to the tracker.
    Announce {
        /// The announce event type.
        event: AnnounceEvent,
    },
    /// A piece finished and verified (world-level instrumentation).
    PieceCompleted {
        /// The piece index.
        piece: u32,
    },
    /// The whole torrent finished.
    Completed,
}

/// Per-connection peer state.
#[derive(Debug, Clone)]
struct Peer {
    addr: SimAddr,
    peer_id: Option<PeerId>,
    outgoing: bool,
    connected_at: SimTime,
    am_choking: bool,
    am_interested: bool,
    peer_choking: bool,
    peer_interested: bool,
    have: Bitfield,
    /// Blocks we have requested from this peer.
    inflight: Vec<BlockRef>,
    /// Granted requests waiting for upload-bucket admission.
    upload_queue: VecDeque<BlockRef>,
    download_est: RateEstimator,
    upload_est: RateEstimator,
    /// Last time any message arrived (armed: keepalive-timeout clock).
    last_recv: SimTime,
    /// Last time a piece arrived (armed: snub-detection clock).
    last_progress: SimTime,
    /// Last time we emitted a keepalive (armed).
    last_keepalive: SimTime,
    /// Armed: no piece progress for the snub timeout — the pipeline is
    /// collapsed to a single probe request until a piece arrives.
    snubbed: bool,
}

/// Cumulative client counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Payload bytes received (blocks).
    pub downloaded_payload: u64,
    /// Payload bytes served (blocks).
    pub uploaded_payload: u64,
    /// Connections ever established.
    pub connections_opened: u64,
    /// Dials that failed.
    pub dial_failures: u64,
    /// Blocks that arrived as duplicates (endgame waste).
    pub duplicate_blocks: u64,
    /// Peers snubbed for lack of piece progress (armed lifecycle only).
    pub snubs: u64,
    /// Connections closed for total silence (armed lifecycle only).
    pub keepalive_closes: u64,
    /// PEX messages sent (one per peer per gossip round).
    pub pex_sent: u64,
    /// PEX messages received and processed.
    pub pex_received: u64,
    /// Addresses first learned through PEX (not the tracker).
    pub pex_addrs_learned: u64,
    /// Times the announce circuit breaker opened.
    pub breaker_trips: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct AddrState {
    failures: u32,
    next_attempt: SimTime,
    connected: bool,
}

/// A BitTorrent client session for one torrent. See the module docs.
///
/// ```
/// use bittorrent::client::{Action, Client, ClientConfig};
/// use bittorrent::metainfo::InfoHash;
/// use bittorrent::peer_id::PeerId;
/// use simnet::addr::SimAddr;
/// use simnet::rng::SimRng;
/// use simnet::time::SimTime;
///
/// let mut client = Client::new(
///     ClientConfig::default(),
///     InfoHash([1; 20]),
///     PeerId([7; 20]),
///     256 * 1024,       // piece length
///     16 * 1024 * 1024, // file length
///     SimAddr(1),
///     SimRng::new(0),
/// );
/// client.start(SimTime::ZERO);
/// // The first thing a session does is find the swarm.
/// assert!(matches!(
///     client.poll_action(),
///     Some(Action::Announce { .. })
/// ));
/// ```
#[derive(Debug)]
pub struct Client {
    config: ClientConfig,
    info_hash: InfoHash,
    peer_id: PeerId,
    progress: TorrentProgress,
    // The four hot maps hash with `FastHashMap`: deterministic across
    // processes and a few instructions per integer key, vs. seeded
    // SipHash. Every effectful iteration still collects and sorts (or is
    // commutative) — see `simnet::hash` for the contract.
    conns: FastHashMap<ConnKey, Peer>,
    /// Connections with a non-empty `upload_queue`, in key order. The
    /// upload drain is round-robin over this set; connections with
    /// nothing queued cannot touch the bucket or the action stream, so
    /// keeping them out of the scan makes the drain cost proportional
    /// to pending uploads instead of to the connection count.
    upload_ready: std::collections::BTreeSet<ConnKey>,
    next_conn: ConnKey,
    availability: Vec<u32>,
    /// Known swarm addresses and dial bookkeeping.
    addrs: FastHashMap<SimAddr, AddrState>,
    choker: Choker,
    /// Tit-for-tat credit per peer-id; survives disconnections. This is
    /// the state a regenerated peer-id orphans.
    credit: FastHashMap<PeerId, f64>,
    /// Bytes served per peer-id (the seed-side relationship history).
    served: FastHashMap<PeerId, f64>,
    /// Last address each peer-id handshook from. Standing must survive
    /// disconnects (the identity-retention contract), but entries whose
    /// standing has fully decayed and whose address is Dead in the
    /// lifecycle machine are evicted at rechoke — without this map a
    /// churn-heavy run grows `credit`/`served` without bound.
    id_addr: FastHashMap<PeerId, SimAddr>,
    actions: VecDeque<Action>,
    rng: SimRng,
    /// Dedicated stream for backoff jitter, forked from `rng` at
    /// construction: arming jitter never perturbs picker/choker draws.
    backoff_rng: SimRng,
    upload_bucket: TokenBucket,
    next_announce: SimTime,
    /// Time the network last became stable (start or reconnection) — the
    /// signal mobility-aware fetching uses.
    stable_since: SimTime,
    completed_reported: bool,
    /// When we last announced (for early re-announce pacing).
    last_announce: SimTime,
    /// Floor for early re-announces when the client has no peers at all.
    /// Starts at [`DEFAULT_MIN_REANNOUNCE`] and is replaced by whatever
    /// `min interval` the tracker's responses carry — the tracker, not
    /// client config, owns re-announce pacing.
    min_reannounce: SimDuration,
    /// When relationship history was last decayed.
    last_decay: SimTime,
    /// PEX freshness book: the last time each address was known good —
    /// directly (a handshake) or transitively (a gossiped entry whose
    /// age dates it). Entries past `pex.max_age` are pruned at gossip
    /// time. Empty whenever PEX is disabled.
    gossip_age: FastHashMap<SimAddr, SimTime>,
    /// Next PEX gossip round (`MAX` when PEX is disabled).
    next_pex: SimTime,
    /// Consecutive announce failures (reset by any tracker response);
    /// drives the announce circuit breaker.
    announce_fail_streak: u32,
    stats: ClientStats,
    /// Own current address (not dialled, filtered from tracker responses).
    own_addr: SimAddr,
    metrics: ClientMetrics,
}

/// Instruments wired up by [`Client::attach_metrics`]. The handle is
/// kept so per-peer credit gauges can be resolved as peers appear.
#[derive(Debug, Default)]
struct ClientMetrics {
    handle: MetricsHandle,
    label: String,
    pieces_completed: Counter,
    rechokes: Counter,
    unchoke_flips: Counter,
}

impl Client {
    /// Creates a session joining the swarm `info_hash` as `peer_id`, with
    /// fresh (empty) download progress.
    pub fn new(
        config: ClientConfig,
        info_hash: InfoHash,
        peer_id: PeerId,
        piece_length: u32,
        length: u64,
        own_addr: SimAddr,
        rng: SimRng,
    ) -> Self {
        let progress = TorrentProgress::new(piece_length, length);
        Self::with_progress(config, info_hash, peer_id, progress, own_addr, rng)
    }

    /// Creates a session resuming existing progress — how the world models
    /// task re-initiation after a hand-off (the file on disk survives; the
    /// swarm state does not).
    pub fn with_progress(
        config: ClientConfig,
        info_hash: InfoHash,
        peer_id: PeerId,
        progress: TorrentProgress,
        own_addr: SimAddr,
        rng: SimRng,
    ) -> Self {
        // One second of burst; oversized blocks go into bucket debt.
        let upload_bucket = TokenBucket::new(
            config.upload_limit,
            config.upload_limit.unwrap_or(1.0).max(1.0),
        );
        let num_pieces = progress.num_pieces() as usize;
        let next_pex = if config.pex.enabled {
            SimTime::ZERO
        } else {
            SimTime::MAX
        };
        let mut client = Client {
            config,
            info_hash,
            peer_id,
            progress,
            conns: FastHashMap::default(),
            upload_ready: std::collections::BTreeSet::new(),
            next_conn: 1,
            availability: vec![0; num_pieces],
            addrs: FastHashMap::default(),
            choker: Choker::new(ChokerConfig::default()),
            credit: FastHashMap::default(),
            served: FastHashMap::default(),
            id_addr: FastHashMap::default(),
            actions: VecDeque::new(),
            backoff_rng: rng.fork(0xBAC0FF),
            rng,
            upload_bucket,
            next_announce: SimTime::ZERO,
            stable_since: SimTime::ZERO,
            completed_reported: false,
            last_announce: SimTime::ZERO,
            min_reannounce: DEFAULT_MIN_REANNOUNCE,
            last_decay: SimTime::ZERO,
            gossip_age: FastHashMap::default(),
            next_pex,
            announce_fail_streak: 0,
            stats: ClientStats::default(),
            own_addr,
            metrics: ClientMetrics::default(),
        };
        client.choker = Choker::new(client.config.choker);
        client.completed_reported = client.progress.is_complete();
        client
    }

    /// Wires this session's swarm observables into `handle` under
    /// `bt.<label>.*`: `pieces_completed`, `rechokes`, and
    /// `unchoke_flips` counters, plus a per-peer `credit.<peer-id>`
    /// gauge refreshed at every rechoke. Inert when the handle is
    /// disabled.
    pub fn attach_metrics(&mut self, handle: &MetricsHandle, label: &str) {
        self.metrics = ClientMetrics {
            handle: handle.clone(),
            label: label.to_string(),
            pieces_completed: handle.counter(&format!("bt.{label}.pieces_completed")),
            rechokes: handle.counter(&format!("bt.{label}.rechokes")),
            unchoke_flips: handle.counter(&format!("bt.{label}.unchoke_flips")),
        };
    }

    /// Starts the session at `now`: announces `Started` to the tracker.
    pub fn start(&mut self, now: SimTime) {
        self.stable_since = now;
        self.next_announce = SimTime::MAX; // set from the tracker response
        self.last_announce = now;
        // Stagger optimistic-unchoke rotation so a swarm of simulated
        // clients does not grant and revoke bootstrap slots in lockstep.
        let interval = self.config.choker.optimistic_interval;
        let back = self.rng.range(0..interval.as_micros().max(1));
        self.choker
            .set_optimistic_phase(now - simnet::time::SimDuration::from_micros(back));
        self.actions.push_back(Action::Announce {
            event: AnnounceEvent::Started,
        });
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The swarm this session is in.
    pub fn info_hash(&self) -> InfoHash {
        self.info_hash
    }

    /// Our peer-id.
    pub fn peer_id(&self) -> PeerId {
        self.peer_id
    }

    /// Download progress (shared bookkeeping).
    pub fn progress(&self) -> &TorrentProgress {
        &self.progress
    }

    /// Consumes the session, yielding its progress (for task
    /// re-initiation).
    pub fn into_progress(self) -> TorrentProgress {
        self.progress
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// True when the torrent is complete (seed).
    pub fn is_seed(&self) -> bool {
        self.progress.is_complete()
    }

    /// Number of live peer connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Connection keys of live peers (sorted, for deterministic iteration).
    pub fn connections(&self) -> Vec<ConnKey> {
        let mut keys: Vec<ConnKey> = self.conns.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Addresses of currently connected peers (the state role-reversal
    /// stores before a hand-off).
    pub fn connected_addrs(&self) -> Vec<SimAddr> {
        let mut v: Vec<SimAddr> = self.conns.values().map(|p| p.addr).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The peer-id observed on a connection (after its handshake).
    pub fn peer_id_of(&self, conn: ConnKey) -> Option<PeerId> {
        self.conns.get(&conn).and_then(|p| p.peer_id)
    }

    /// Whether we initiated the connection (role reversal flips this
    /// pattern for mobile hosts).
    pub fn is_outgoing(&self, conn: ConnKey) -> Option<bool> {
        self.conns.get(&conn).map(|p| p.outgoing)
    }

    /// When the connection was established.
    pub fn connected_at(&self, conn: ConnKey) -> Option<SimTime> {
        self.conns.get(&conn).map(|p| p.connected_at)
    }

    /// Debug/metrics: counts of `(peers unchoking us, peers we are
    /// interested in, peers interested in us, blocks in flight)`.
    pub fn relation_counts(&self) -> (usize, usize, usize, usize) {
        let unchoked = self.conns.values().filter(|p| !p.peer_choking).count();
        let we_want = self.conns.values().filter(|p| p.am_interested).count();
        let want_us = self.conns.values().filter(|p| p.peer_interested).count();
        let inflight = self.conns.values().map(|p| p.inflight.len()).sum();
        (unchoked, we_want, want_us, inflight)
    }

    /// Current credit for a peer-id.
    pub fn credit_of(&self, id: PeerId) -> f64 {
        self.credit.get(&id).copied().unwrap_or(0.0)
    }

    /// Sizes of the per-peer-id standing tables:
    /// `(credit, served, id_addr)`. The credit-eviction regression test
    /// watches these stay bounded under churn.
    pub fn standing_table_sizes(&self) -> (usize, usize, usize) {
        (self.credit.len(), self.served.len(), self.id_addr.len())
    }

    /// The strategy class this client runs.
    pub fn strategy_kind(&self) -> StrategyKind {
        self.config.strategy.kind()
    }

    /// Strategy hook proxy: whether this client deliberately
    /// regenerates its peer-id at re-initiation (worlds consult this
    /// when deciding identity retention).
    pub fn churns_identity(&self) -> bool {
        self.config.strategy.churn_identity()
    }

    /// The resilience configuration in force.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.config.resilience
    }

    /// Whether the announce circuit breaker is currently open (the
    /// consecutive-failure streak reached the threshold and no tracker
    /// response has closed it since). Always `false` when the breaker
    /// is disabled. While open, only the scheduled cooloff probe
    /// announces — the empty-swarm early re-announce is suppressed.
    pub fn breaker_is_open(&self) -> bool {
        let res = &self.config.resilience;
        res.breaker_threshold > 0 && self.announce_fail_streak >= res.breaker_threshold
    }

    /// Consecutive failed announces since the last tracker response.
    pub fn announce_fail_streak(&self) -> u32 {
        self.announce_fail_streak
    }

    /// The early re-announce floor currently in force.
    pub fn min_reannounce(&self) -> SimDuration {
        self.min_reannounce
    }

    /// Whether PEX gossip is enabled on this session.
    pub fn pex_enabled(&self) -> bool {
        self.config.pex.enabled
    }

    /// The PEX freshness book, sorted by address: `(addr, last known
    /// good)`. Deterministic — invariant checks and tests diff it.
    pub fn pex_book(&self) -> Vec<(SimAddr, SimTime)> {
        let mut v: Vec<(SimAddr, SimTime)> = self.gossip_age.iter().map(|(a, t)| (*a, *t)).collect();
        v.sort_unstable_by_key(|e| e.0);
        v
    }

    /// Every address this client knows how to dial, sorted. PEX state
    /// persistence hands this to the re-initiated task after a hand-off
    /// so a moved host can rejoin a tracker-dark swarm.
    pub fn known_addrs(&self) -> Vec<SimAddr> {
        let mut v: Vec<SimAddr> = self.addrs.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether a connection is currently snubbed (armed lifecycle only).
    pub fn is_snubbed(&self, conn: ConnKey) -> Option<bool> {
        self.conns.get(&conn).map(|p| p.snubbed)
    }

    /// Number of currently snubbed connections.
    pub fn snubbed_count(&self) -> usize {
        self.conns.values().filter(|p| p.snubbed).count()
    }

    /// Lifecycle state of a known address at `now`. `None` for unknown
    /// addresses. The soak harness's liveness assertions read this: no
    /// address may sit in [`ConnState::BackingOff`] with an unbounded
    /// retry time unless its budget is spent ([`ConnState::Dead`]).
    pub fn lifecycle_of(&self, addr: SimAddr, now: SimTime) -> Option<ConnState> {
        let res = self.config.resilience;
        let st = self.addrs.get(&addr)?;
        Some(if st.connected {
            let snubbed = self.conns.values().any(|p| p.addr == addr && p.snubbed);
            if snubbed {
                ConnState::Snubbed
            } else {
                ConnState::Established
            }
        } else if st.next_attempt == SimTime::MAX
            || (res.armed && st.failures >= res.max_dial_attempts)
        {
            ConnState::Dead
        } else if st.next_attempt > now {
            ConnState::BackingOff
        } else if st.failures > 0 {
            ConnState::Reconnecting
        } else {
            ConnState::Connecting
        })
    }

    /// Dial bookkeeping snapshot, sorted by address:
    /// `(addr, failures, next_attempt, connected)`. Deterministic — the
    /// soak harness diffs it between replays.
    pub fn addr_states(&self) -> Vec<(SimAddr, u32, SimTime, bool)> {
        let mut v: Vec<(SimAddr, u32, SimTime, bool)> = self
            .addrs
            .iter()
            .map(|(a, st)| (*a, st.failures, st.next_attempt, st.connected))
            .collect();
        v.sort_unstable_by_key(|e| e.0);
        v
    }

    /// Changes the upload cap (bytes/second); wP2P's LIHD calls this.
    pub fn set_upload_limit(&mut self, limit: Option<f64>) {
        self.config.upload_limit = limit;
        // Rebuild so the burst matches the new rate.
        self.upload_bucket = TokenBucket::new(limit, limit.unwrap_or(1.0).max(1.0));
    }

    /// The configured upload cap.
    pub fn upload_limit(&self) -> Option<f64> {
        self.config.upload_limit
    }

    /// Updates our own address after a hand-off so tracker responses
    /// containing it are still filtered.
    pub fn set_own_addr(&mut self, addr: SimAddr) {
        self.own_addr = addr;
    }

    /// Injects known peer addresses directly (role reversal hands the
    /// stored peer list to the re-initiated task).
    pub fn seed_known_addrs(&mut self, addrs: &[SimAddr], now: SimTime) {
        for &a in addrs {
            if a != self.own_addr {
                self.addrs.entry(a).or_insert(AddrState {
                    failures: 0,
                    next_attempt: now,
                    connected: false,
                });
            }
        }
    }

    /// Marks the network stable from `now` (reconnection completed) — feeds
    /// the mobility-aware picker's stability clock.
    pub fn mark_stable(&mut self, now: SimTime) {
        self.stable_since = now;
    }

    /// Pops the next pending action.
    pub fn poll_action(&mut self) -> Option<Action> {
        self.actions.pop_front()
    }

    // ------------------------------------------------------------------
    // Transport events
    // ------------------------------------------------------------------

    /// Allocates a connection key (used internally and by tests).
    fn alloc_conn(&mut self) -> ConnKey {
        let k = self.next_conn;
        self.next_conn += 1;
        k
    }

    fn register_peer(&mut self, conn: ConnKey, addr: SimAddr, outgoing: bool, now: SimTime) {
        let peer = Peer {
            addr,
            peer_id: None,
            outgoing,
            connected_at: now,
            am_choking: true,
            am_interested: false,
            peer_choking: true,
            peer_interested: false,
            have: Bitfield::new(self.progress.num_pieces()),
            inflight: Vec::new(),
            upload_queue: VecDeque::new(),
            download_est: RateEstimator::new(),
            upload_est: RateEstimator::new(),
            last_recv: now,
            last_progress: now,
            last_keepalive: now,
            snubbed: false,
        };
        self.conns.insert(conn, peer);
        self.stats.connections_opened += 1;
        if let Some(st) = self.addrs.get_mut(&addr) {
            st.connected = true;
            st.failures = 0;
        }
        // Handshake, then our bitfield.
        self.actions.push_back(Action::Send {
            conn,
            msg: Message::Handshake {
                info_hash: self.info_hash,
                peer_id: self.peer_id,
            },
        });
        self.actions.push_back(Action::Send {
            conn,
            msg: Message::Bitfield(self.progress.have().clone()),
        });
    }

    /// An outgoing dial succeeded.
    pub fn on_connected(&mut self, conn: ConnKey, addr: SimAddr, now: SimTime) {
        self.register_peer(conn, addr, true, now);
    }

    /// An incoming connection was accepted; returns its key.
    pub fn on_incoming(&mut self, addr: SimAddr, now: SimTime) -> ConnKey {
        let conn = self.alloc_conn();
        self.addrs.entry(addr).or_default();
        self.register_peer(conn, addr, false, now);
        conn
    }

    /// An outgoing dial failed (timeout / unroutable — the fate of every
    /// dial to a moved mobile host's old address).
    pub fn on_conn_failed(&mut self, addr: SimAddr, now: SimTime) {
        self.stats.dial_failures += 1;
        let res = self.config.resilience;
        if let Some(st) = self.addrs.get_mut(&addr) {
            st.connected = false;
            st.failures += 1;
            st.next_attempt = if res.armed {
                if st.failures >= res.max_dial_attempts {
                    SimTime::MAX // ConnState::Dead: retry budget exhausted
                } else {
                    now + res.dial.delay(st.failures - 1, &mut self.backoff_rng)
                }
            } else {
                // Legacy schedule: base doubling per failure, capped 2⁴.
                now + self
                    .config
                    .dial_backoff
                    .saturating_mul(1u64 << st.failures.min(4))
            };
        }
    }

    /// An established connection died.
    pub fn on_conn_closed(&mut self, conn: ConnKey, now: SimTime) {
        let Some(peer) = self.conns.remove(&conn) else {
            return;
        };
        self.upload_ready.remove(&conn);
        for p in peer.have.iter_set() {
            self.availability[p as usize] -= 1;
        }
        self.progress.cancel_conn(conn);
        let res = self.config.resilience;
        if let Some(st) = self.addrs.get_mut(&peer.addr) {
            st.connected = false;
            st.next_attempt = if res.armed {
                // A close is not a dial failure: the redial waits out the
                // current backoff step but does not escalate it.
                now + res.dial.delay(st.failures, &mut self.backoff_rng)
            } else {
                now + self.config.dial_backoff
            };
        }
        self.choker.invalidate();
    }

    /// A connection was aborted for lack of progress (the world's stall
    /// watchdog fired, or our keepalive timeout expired). Unarmed this is
    /// [`Self::on_conn_closed`] — the legacy kill-without-reconnect.
    /// Armed, the address transitions into backing-off: the failure count
    /// escalates so the redial follows the exponential schedule, and the
    /// address goes [`ConnState::Dead`] once the retry budget is spent.
    pub fn on_conn_stalled(&mut self, conn: ConnKey, now: SimTime) {
        let res = self.config.resilience;
        if !res.armed {
            self.on_conn_closed(conn, now);
            return;
        }
        let Some(peer) = self.conns.remove(&conn) else {
            return;
        };
        self.upload_ready.remove(&conn);
        for p in peer.have.iter_set() {
            self.availability[p as usize] -= 1;
        }
        self.progress.cancel_conn(conn);
        if let Some(st) = self.addrs.get_mut(&peer.addr) {
            st.connected = false;
            st.failures += 1;
            st.next_attempt = if st.failures >= res.max_dial_attempts {
                SimTime::MAX
            } else {
                now + res.dial.delay(st.failures - 1, &mut self.backoff_rng)
            };
        }
        self.choker.invalidate();
    }

    /// A wire message arrived on `conn`.
    pub fn on_message(&mut self, conn: ConnKey, msg: Message, now: SimTime) {
        let Some(peer) = self.conns.get_mut(&conn) else {
            return;
        };
        peer.last_recv = now;
        match msg {
            Message::Handshake { info_hash, peer_id } => {
                if info_hash != self.info_hash || peer_id == self.peer_id {
                    // Wrong swarm or talking to ourselves: drop.
                    self.close_conn(conn);
                    return;
                }
                // One connection per peer-id: a reconnect replaces a
                // stale (usually silently dead) old connection. This is
                // why identity retention restores standing immediately —
                // the remote recognizes the returning peer — while a
                // regenerated id leaves a ghost behind and starts over.
                // Only connections older than the handshake timescale are
                // treated as stale: two crossed simultaneous dials must
                // not close each other.
                let mut stale: Vec<ConnKey> = self
                    .conns
                    .iter()
                    .filter(|(k, p)| {
                        **k != conn
                            && p.peer_id == Some(peer_id)
                            && now.saturating_since(p.connected_at) > SimDuration::from_secs(30)
                    })
                    .map(|(k, _)| *k)
                    .collect();
                // Map order leaks into Close-action order otherwise —
                // sorted so snapshot-restored runs emit the same stream.
                stale.sort_unstable();
                for k in stale {
                    self.close_conn(k);
                }
                let addr = if let Some(peer) = self.conns.get_mut(&conn) {
                    peer.peer_id = Some(peer_id);
                    self.id_addr.insert(peer_id, peer.addr);
                    peer.addr
                } else {
                    return; // closed while deduplicating
                };
                if self.config.pex.enabled {
                    // A completed handshake is first-hand liveness
                    // evidence — age 0 in the gossip book. This is also
                    // how a moved mobile host's *new* address enters
                    // circulation: it dials from the new address, the
                    // handshake carries its retained peer-id (standing
                    // re-attaches via `id_addr`/`credit`), and the next
                    // gossip round spreads the new address.
                    self.gossip_age.insert(addr, now);
                }
                self.credit.entry(peer_id).or_insert(0.0);
                self.choker.invalidate();
            }
            Message::KeepAlive => {}
            Message::Choke => {
                if let Some(peer) = self.conns.get_mut(&conn) {
                    peer.peer_choking = true;
                    // Outstanding requests will not be served; requeue.
                    peer.inflight.clear();
                }
                self.progress.cancel_conn(conn);
            }
            Message::Unchoke => {
                if let Some(peer) = self.conns.get_mut(&conn) {
                    peer.peer_choking = false;
                }
                self.fill_requests(conn, now);
            }
            Message::Interested => {
                if let Some(peer) = self.conns.get_mut(&conn) {
                    peer.peer_interested = true;
                }
            }
            Message::NotInterested => {
                if let Some(peer) = self.conns.get_mut(&conn) {
                    peer.peer_interested = false;
                }
            }
            Message::Have { index } => {
                let valid = index < self.progress.num_pieces();
                if !valid {
                    self.close_conn(conn);
                    return;
                }
                if let Some(peer) = self.conns.get_mut(&conn) {
                    if !peer.have.get(index) {
                        peer.have.set(index);
                        self.availability[index as usize] += 1;
                    }
                }
                // A piece we already hold changes neither our interest (the
                // witness set of wanted pieces is untouched) nor the request
                // candidates, so the re-evaluation would be a guaranteed
                // no-op — and Haves for held pieces dominate a maturing
                // swarm's traffic.
                if !self.progress.have().get(index) {
                    self.update_interest(conn);
                    self.fill_requests(conn, now);
                }
            }
            Message::Bitfield(bf) => {
                if bf.len() != self.progress.num_pieces() {
                    self.close_conn(conn);
                    return;
                }
                if let Some(peer) = self.conns.get_mut(&conn) {
                    for p in peer.have.iter_set() {
                        self.availability[p as usize] -= 1;
                    }
                    for p in bf.iter_set() {
                        self.availability[p as usize] += 1;
                    }
                    peer.have = bf;
                }
                self.update_interest(conn);
                self.fill_requests(conn, now);
            }
            Message::Request(block) => self.on_request(conn, block, now),
            Message::Piece(block) => self.on_piece(conn, block, now),
            Message::Cancel(block) => {
                if let Some(peer) = self.conns.get_mut(&conn) {
                    peer.upload_queue.retain(|b| *b != block);
                    if peer.upload_queue.is_empty() {
                        self.upload_ready.remove(&conn);
                    }
                }
            }
            Message::Pex { peers } => self.on_pex(peers, now),
        }
    }

    /// Merges a received PEX message into the freshness book and the
    /// dial address book. Second-hand evidence only ever *improves*
    /// freshness (max-merge), and a [`ConnState::Dead`] address is
    /// revived only by evidence strictly newer than what buried it —
    /// otherwise every gossip round would resurrect a moved mobile
    /// host's abandoned address and re-burn the dial budget on it.
    fn on_pex(&mut self, peers: Vec<(SimAddr, u32)>, now: SimTime) {
        if !self.config.pex.enabled {
            return; // gossip-deaf: legacy behaviour, byte-identical
        }
        self.stats.pex_received += 1;
        let res = self.config.resilience;
        let max_age = self.config.pex.max_age;
        for (addr, age) in peers {
            if addr == self.own_addr {
                continue;
            }
            let age = SimDuration::from_secs(u64::from(age));
            if age > max_age {
                continue; // past the staleness horizon on arrival
            }
            let fresh_at = if now.as_micros() >= age.as_micros() {
                now - age
            } else {
                SimTime::ZERO
            };
            let newer = match self.gossip_age.get(&addr) {
                Some(&prev) => fresh_at > prev,
                None => true,
            };
            if !newer {
                continue;
            }
            self.gossip_age.insert(addr, fresh_at);
            match self.addrs.get_mut(&addr) {
                None => {
                    self.stats.pex_addrs_learned += 1;
                    self.addrs.insert(
                        addr,
                        AddrState {
                            failures: 0,
                            next_attempt: now,
                            connected: false,
                        },
                    );
                }
                Some(st) => {
                    let dead = st.next_attempt == SimTime::MAX
                        || (res.armed && st.failures >= res.max_dial_attempts);
                    if dead && !st.connected {
                        st.failures = 0;
                        st.next_attempt = now;
                    }
                }
            }
        }
        self.try_connects(now);
    }

    /// Emits one PEX round: refreshes live connections to age 0, prunes
    /// the book past the staleness horizon, and sends the freshest
    /// `max_entries` (address-sorted on the wire) to every peer.
    fn gossip_pex(&mut self, now: SimTime) {
        let pex = self.config.pex;
        self.next_pex = now + pex.gossip_interval;
        for addr in self.connected_addrs() {
            self.gossip_age.insert(addr, now);
        }
        let own = self.own_addr;
        // Pure predicate: hash-order retain is commutative and replays
        // identically.
        self.gossip_age
            .retain(|a, t| *a != own && now.saturating_since(*t) <= pex.max_age);
        let mut entries: Vec<(SimAddr, u32)> = self
            .gossip_age
            .iter()
            .map(|(a, t)| {
                let age = now.saturating_since(*t).as_micros() / 1_000_000;
                (*a, u32::try_from(age).unwrap_or(u32::MAX))
            })
            .collect();
        // Freshest first (address as tie-break), capped, then back to
        // the wire's address order.
        entries.sort_unstable_by_key(|&(a, age)| (age, a));
        entries.truncate(pex.max_entries);
        entries.sort_unstable_by_key(|e| e.0);
        if entries.is_empty() {
            return;
        }
        for conn in self.connections() {
            self.stats.pex_sent += 1;
            self.actions.push_back(Action::Send {
                conn,
                msg: Message::Pex {
                    peers: entries.clone(),
                },
            });
        }
    }

    fn on_request(&mut self, conn: ConnKey, block: BlockRef, now: SimTime) {
        let Some(peer) = self.conns.get_mut(&conn) else {
            return;
        };
        // Protocol: requests while choked are ignored; so are requests for
        // data we lack, and blocks longer than the transfer granularity
        // permits (real clients cap at 128 KB; the fluid transport may use
        // piece-sized blocks, so the cap follows the piece length).
        let max_block = self.progress.piece_length().max(128 * 1024);
        if peer.am_choking
            || !self.config.allow_upload
            || !self.config.strategy.uploads()
            || block.len > max_block
            || block.piece >= self.progress.num_pieces()
            || !self.progress.have().get(block.piece)
        {
            return;
        }
        peer.upload_queue.push_back(block);
        self.upload_ready.insert(conn);
        self.drain_uploads(now);
    }

    fn on_piece(&mut self, conn: ConnKey, block: BlockRef, now: SimTime) {
        {
            let Some(peer) = self.conns.get_mut(&conn) else {
                return;
            };
            peer.inflight.retain(|b| *b != block);
            peer.download_est.record(now, block.len as u64);
            peer.last_progress = now;
            peer.snubbed = false; // piece progress unsnubs
        }
        // Identify other requesters before completion wipes the records.
        let others = self.progress.other_requesters(block, conn);
        match self.progress.on_block(block, conn) {
            BlockOutcome::Duplicate => {
                self.stats.duplicate_blocks += 1;
            }
            BlockOutcome::Progress { completed_piece } => {
                self.stats.downloaded_payload += block.len as u64;
                // Credit the sender's peer-id.
                if let Some(id) = self.conns.get(&conn).and_then(|p| p.peer_id) {
                    *self.credit.entry(id).or_insert(0.0) += block.len as f64;
                }
                // Endgame: cancel duplicates elsewhere.
                for other in others {
                    if let Some(peer) = self.conns.get_mut(&other) {
                        peer.inflight.retain(|b| *b != block);
                        self.actions.push_back(Action::Send {
                            conn: other,
                            msg: Message::Cancel(block),
                        });
                    }
                }
                if let Some(piece) = completed_piece {
                    self.metrics.pieces_completed.inc();
                    self.actions.push_back(Action::PieceCompleted { piece });
                    let keys = self.connections();
                    for k in keys {
                        self.actions.push_back(Action::Send {
                            conn: k,
                            msg: Message::Have { index: piece },
                        });
                    }
                    // Our interest in some peers may have lapsed.
                    for k in self.connections() {
                        self.update_interest(k);
                    }
                    if self.progress.is_complete() && !self.completed_reported {
                        self.completed_reported = true;
                        self.actions.push_back(Action::Completed);
                        self.actions.push_back(Action::Announce {
                            event: AnnounceEvent::Completed,
                        });
                        if !self.config.keep_seeding {
                            for k in self.connections() {
                                self.close_conn(k);
                            }
                            self.actions.push_back(Action::Announce {
                                event: AnnounceEvent::Stopped,
                            });
                        }
                    }
                }
            }
        }
        self.fill_requests(conn, now);
    }

    /// The tracker answered an announce.
    pub fn on_tracker_response(&mut self, resp: &AnnounceResponse, now: SimTime) {
        // Strategy hook: adversarial clients stretch or compress the
        // tracker's schedule. The honest stretch (1.0) takes the exact
        // legacy path so its announce timing is bit-for-bit unchanged.
        let stretch = self.config.strategy.announce_stretch();
        let interval = if stretch == 1.0 {
            resp.interval
        } else {
            SimDuration::from_secs_f64(resp.interval.as_secs_f64() * stretch.max(0.0))
        };
        self.next_announce = now + interval;
        self.announce_fail_streak = 0;
        // The tracker owns re-announce pacing: a non-zero `min interval`
        // replaces ours, and a zero one ("unspecified") restores the
        // default floor — a tracker that once tightened the floor and
        // later relaxed it must not leave clients pinned forever.
        self.min_reannounce = if resp.min_interval.is_zero() {
            DEFAULT_MIN_REANNOUNCE
        } else {
            resp.min_interval
        };
        let addrs: Vec<SimAddr> = resp.peers.iter().map(|&(_, a)| a).collect();
        self.seed_known_addrs(&addrs, now);
        self.try_connects(now);
    }

    /// An announce could not be served (every routable shard is down).
    /// Worlds call this *instead of* synthesizing a retry response when
    /// the circuit breaker is armed (`breaker_threshold > 0`): the first
    /// failures climb the resilience announce-backoff ladder, and once
    /// the streak reaches the threshold the breaker opens — the next
    /// probe waits a full `breaker_cooloff`, so a dead tier is polled,
    /// not hammered, while PEX keeps discovery alive.
    pub fn on_announce_failed(&mut self, now: SimTime) {
        let res = self.config.resilience;
        self.announce_fail_streak = self.announce_fail_streak.saturating_add(1);
        let delay = if res.breaker_threshold > 0 && self.announce_fail_streak >= res.breaker_threshold
        {
            self.stats.breaker_trips += 1;
            res.breaker_cooloff
        } else {
            res.announce
                .delay(self.announce_fail_streak - 1, &mut self.backoff_rng)
        };
        self.last_announce = now;
        self.next_announce = now + delay.max(self.min_reannounce);
    }

    // ------------------------------------------------------------------
    // Periodic work
    // ------------------------------------------------------------------

    /// Runs timers: rechoke, announce, request timeouts, dials, upload
    /// drain. Call every few hundred milliseconds of virtual time.
    pub fn on_tick(&mut self, now: SimTime) {
        // Tracker: the regular schedule, plus an early re-announce when
        // we have no peers at all (the recovery path a fixed peer uses
        // after its mobile correspondents vanish).
        if now >= self.next_announce {
            self.next_announce = SimTime::MAX; // reset by the response
            self.last_announce = now;
            self.actions.push_back(Action::Announce {
                event: AnnounceEvent::Periodic,
            });
        } else if self.conns.is_empty()
            && self.next_announce != SimTime::MAX
            && now.saturating_since(self.last_announce) >= self.min_reannounce
            && !self.breaker_is_open()
        {
            self.last_announce = now;
            self.actions.push_back(Action::Announce {
                event: AnnounceEvent::Periodic,
            });
        }
        // PEX gossip round (next_pex is MAX whenever PEX is disabled).
        if now >= self.next_pex {
            self.gossip_pex(now);
        }
        // Armed lifecycle: silence closes, keepalives, snub detection.
        if self.config.resilience.armed {
            self.lifecycle_tick(now);
        }
        // Request timeouts: free the blocks and tell the (slow) remote to
        // drop the queued work so it stops wasting its uplink on us.
        let expired = self
            .progress
            .expire_requests(now, self.config.request_timeout);
        for (conn, block) in expired {
            if let Some(peer) = self.conns.get_mut(&conn) {
                peer.inflight.retain(|b| *b != block);
                self.actions.push_back(Action::Send {
                    conn,
                    msg: Message::Cancel(block),
                });
            }
        }
        // Choking.
        if self.choker.due(now) {
            self.rechoke(now);
        }
        // Refill pipelines (newly freed blocks, timeout requeues). Only
        // unchoked connections we are interested in can take requests —
        // `fill_requests` is a no-op on the rest, so skip them wholesale
        // rather than paying a map lookup per connection to find out.
        // Sorted, so the request order is deterministic (hash order is
        // not) and matches the old full sweep's with the no-ops elided.
        let mut fillable: Vec<ConnKey> = self
            .conns
            .iter()
            .filter(|(_, p)| !p.peer_choking && p.am_interested)
            .map(|(k, _)| *k)
            .collect();
        fillable.sort_unstable();
        for conn in fillable {
            self.fill_requests(conn, now);
        }
        self.drain_uploads(now);
        self.try_connects(now);
    }

    /// Armed-lifecycle periodic work: closes totally silent connections
    /// into backing-off, emits keepalives on the rest, and snubs peers
    /// that stopped delivering pieces.
    fn lifecycle_tick(&mut self, now: SimTime) {
        let res = self.config.resilience;
        // 1. Total silence: the link is dead even if our side still has
        //    work queued. Close it and escalate the address's backoff.
        let mut silent: Vec<ConnKey> = self
            .conns
            .iter()
            .filter(|(_, p)| now.saturating_since(p.last_recv) >= res.keepalive_timeout)
            .map(|(k, _)| *k)
            .collect();
        silent.sort_unstable();
        for conn in silent {
            self.stats.keepalive_closes += 1;
            self.actions.push_back(Action::Close { conn });
            self.on_conn_stalled(conn, now);
        }
        // 2. Keepalives, so a healthy-but-idle connection never trips the
        //    remote's silence detector. Stamps can land in hash order
        //    (commutative); the sends go out in key order.
        let mut due: Vec<ConnKey> = Vec::new();
        for (&conn, peer) in self.conns.iter_mut() {
            if now.saturating_since(peer.last_keepalive) >= res.keepalive_interval {
                peer.last_keepalive = now;
                due.push(conn);
            }
        }
        due.sort_unstable();
        for conn in due {
            self.actions.push_back(Action::Send {
                conn,
                msg: Message::KeepAlive,
            });
        }
        // 3. Snubs: unchoked and interested but no piece for the snub
        //    timeout. Requeue the in-flight blocks (other peers can serve
        //    them) and collapse the pipeline to a single probe request;
        //    the next piece that does arrive unsnubs.
        let mut snubbed: Vec<ConnKey> = self
            .conns
            .iter()
            .filter(|(_, peer)| {
                !peer.snubbed
                    && !peer.peer_choking
                    && peer.am_interested
                    && now.saturating_since(peer.last_progress) >= res.snub_timeout
            })
            .map(|(k, _)| *k)
            .collect();
        snubbed.sort_unstable();
        for conn in snubbed {
            let Some(peer) = self.conns.get_mut(&conn) else {
                continue;
            };
            peer.snubbed = true;
            self.stats.snubs += 1;
            let dropped: Vec<BlockRef> = peer.inflight.drain(..).collect();
            self.progress.cancel_conn(conn);
            for b in dropped {
                self.actions.push_back(Action::Send {
                    conn,
                    msg: Message::Cancel(b),
                });
            }
        }
    }

    fn rechoke(&mut self, now: SimTime) {
        // Relationship history weight: how many "equivalent bytes/second"
        // of standing each byte of past exchange with a peer-id confers.
        // This is what a regenerated peer-id forfeits (paper §3.4) and
        // what identity retention preserves (paper §4.2).
        const HISTORY_WEIGHT: f64 = 0.1;
        // History decays with a ~5-minute time constant, so standing is
        // bounded (≈ 6× the sustained exchange rate at equilibrium): old
        // relationships stay warm across brief absences, but the choke
        // order never freezes into a permanent oligarchy.
        const HISTORY_TAU_SECS: f64 = 300.0;
        // Standing below this is treated as fully decayed: flushed to an
        // exact zero so the eviction pass below can spot dead
        // relationships (exponential decay alone never reaches 0.0).
        const HISTORY_EPSILON: f64 = 1e-9;
        let dt = now.saturating_since(self.last_decay).as_secs_f64();
        self.last_decay = now;
        if dt > 0.0 {
            let factor = (-dt / HISTORY_TAU_SECS).exp();
            for v in self.credit.values_mut() {
                *v *= factor;
                if *v < HISTORY_EPSILON {
                    *v = 0.0;
                }
            }
            for v in self.served.values_mut() {
                *v *= factor;
                if *v < HISTORY_EPSILON {
                    *v = 0.0;
                }
            }
            self.evict_dead_standing();
        }
        let seeding = self.is_seed();
        // Seed-side service order: the policy decides how much standing
        // (vs live push rate) counts — i.e. whether freshly re-initiated
        // mobile peers wait behind proven relationships.
        let seed_hist_weight = self.config.service_policy.history_weight(HISTORY_WEIGHT);
        let mut speers = Vec::with_capacity(self.conns.len());
        let mut conns: Vec<(&ConnKey, &mut Peer)> = self.conns.iter_mut().collect();
        conns.sort_by_key(|(k, _)| **k);
        for (k, peer) in conns {
            let credit = if seeding {
                // Seeds favour peers they can push data to fastest, with
                // standing relationships as tie-breaker.
                let hist = peer
                    .peer_id
                    .map(|id| self.served.get(&id).copied().unwrap_or(0.0))
                    .unwrap_or(0.0);
                peer.upload_est.rate(now) + hist * seed_hist_weight
            } else {
                // Leeches favour peers by live download rate plus the
                // accumulated peer-id credit.
                let hist = peer
                    .peer_id
                    .map(|id| self.credit.get(&id).copied().unwrap_or(0.0))
                    .unwrap_or(0.0);
                peer.download_est.rate(now) + hist * HISTORY_WEIGHT
            };
            speers.push(StrategyPeer {
                key: *k,
                peer_id: peer.peer_id,
                interested: peer.peer_interested,
                credit,
                unchoked_us: !peer.peer_choking,
                we_unchoked: !peer.am_choking,
            });
        }
        // Strategy hooks: learn from this round's reciprocation state,
        // then rewrite the credit the choker ranks by. Honest leaves the
        // credit untouched.
        self.config.strategy.observe_rechoke(&speers);
        let snapshots: Vec<PeerSnapshot> = speers
            .iter()
            .map(|sp| PeerSnapshot {
                key: sp.key,
                interested: sp.interested,
                credit: self.config.strategy.shape_credit(sp),
            })
            .collect();
        self.metrics.rechokes.inc();
        if self.metrics.handle.is_enabled() {
            // Per-peer tit-for-tat credit, refreshed once per rechoke so
            // the gauge map tracks the live standing order.
            for snap in &snapshots {
                if let Some(id) = self.conns.get(&snap.key).and_then(|p| p.peer_id) {
                    let label = &self.metrics.label;
                    self.metrics
                        .handle
                        .gauge(&format!("bt.{label}.credit.{id}"))
                        .set(snap.credit);
                }
            }
        }
        let decision = self.choker.rechoke(now, &snapshots, &mut self.rng);
        for conn in self.connections() {
            let unchoke = decision.unchoked.contains(&conn);
            let Some(peer) = self.conns.get_mut(&conn) else {
                continue;
            };
            if unchoke && peer.am_choking {
                peer.am_choking = false;
                self.metrics.unchoke_flips.inc();
                self.actions.push_back(Action::Send {
                    conn,
                    msg: Message::Unchoke,
                });
            } else if !unchoke && !peer.am_choking {
                peer.am_choking = true;
                self.metrics.unchoke_flips.inc();
                // Already-granted requests stay queued and are still
                // served: dropping them would re-transfer whole blocks
                // whenever a borderline peer flaps between choke states
                // across rechoke rounds. New requests are refused.
                self.actions.push_back(Action::Send {
                    conn,
                    msg: Message::Choke,
                });
            }
        }
    }

    /// Evicts fully-decayed standing for peers that are gone for good.
    ///
    /// The identity-retention contract says standing survives
    /// disconnections — a returning peer-id must find its credit — so
    /// only entries that are *both* at exactly zero (flushed by the
    /// decay pass) *and* belong to a peer with no live connection whose
    /// last-known address is Dead in the lifecycle machine are removed.
    /// Without this, every peer-id ever handshaken leaves a permanent
    /// `credit` entry and churn-heavy runs sweep an ever-growing map at
    /// each rechoke.
    fn evict_dead_standing(&mut self) {
        let res = self.config.resilience;
        let mut live: Vec<PeerId> = self.conns.values().filter_map(|p| p.peer_id).collect();
        live.sort_unstable();
        let addrs = &self.addrs;
        let id_addr = &self.id_addr;
        // An id is reclaimable when its address's dial budget is spent
        // (or the address was never recorded, so nothing will re-dial
        // it). The predicate is pure, so `retain`'s hash-order visit is
        // commutative and replays identically.
        let reclaimable = |id: &PeerId| -> bool {
            if live.binary_search(id).is_ok() {
                return false;
            }
            match id_addr.get(id).and_then(|a| addrs.get(a)) {
                Some(st) => {
                    !st.connected
                        && (st.next_attempt == SimTime::MAX
                            || (res.armed && st.failures >= res.max_dial_attempts))
                }
                None => true,
            }
        };
        self.credit.retain(|id, v| *v != 0.0 || !reclaimable(id));
        self.served.retain(|id, v| *v != 0.0 || !reclaimable(id));
        let credit = &self.credit;
        let served = &self.served;
        self.id_addr.retain(|id, _| {
            credit.contains_key(id) || served.contains_key(id) || live.binary_search(id).is_ok()
        });
    }

    fn drain_uploads(&mut self, now: SimTime) {
        if !self.config.allow_upload || self.upload_ready.is_empty() {
            return;
        }
        // Round-robin across connections with queued blocks, in key order
        // for fairness.
        let keys: Vec<ConnKey> = self.upload_ready.iter().copied().collect();
        let mut progressed = true;
        while progressed {
            progressed = false;
            for &conn in &keys {
                let Some(peer) = self.conns.get_mut(&conn) else {
                    continue;
                };
                let Some(&block) = peer.upload_queue.front() else {
                    continue;
                };
                if !self.upload_bucket.try_consume(now, block.len as u64) {
                    return; // bucket empty; retry next tick
                }
                peer.upload_queue.pop_front();
                if peer.upload_queue.is_empty() {
                    self.upload_ready.remove(&conn);
                }
                peer.upload_est.record(now, block.len as u64);
                if let Some(id) = peer.peer_id {
                    *self.served.entry(id).or_insert(0.0) += block.len as f64;
                }
                self.stats.uploaded_payload += block.len as u64;
                self.actions.push_back(Action::Send {
                    conn,
                    msg: Message::Piece(block),
                });
                progressed = true;
            }
        }
    }

    fn try_connects(&mut self, now: SimTime) {
        // A seed wants nothing, so (unless role reversal demands it) it
        // never dials — it waits to be found.
        if self.is_seed() && !self.config.dial_while_seeding {
            return;
        }
        let mut budget = self.config.max_connections.saturating_sub(self.conns.len());
        if budget == 0 {
            return;
        }
        let mut candidates: Vec<SimAddr> = self
            .addrs
            .iter()
            .filter(|(_, st)| !st.connected && st.next_attempt <= now)
            .map(|(a, _)| *a)
            .collect();
        candidates.sort_unstable();
        for addr in candidates {
            if budget == 0 {
                break;
            }
            // Mark attempt: do not re-dial until failure/success updates.
            let st = self.addrs.get_mut(&addr).expect("candidate exists");
            st.next_attempt = now + self.config.dial_backoff;
            let conn = self.alloc_conn();
            self.actions.push_back(Action::Connect { conn, addr });
            budget -= 1;
        }
    }

    // ------------------------------------------------------------------
    // Requesting
    // ------------------------------------------------------------------

    fn update_interest(&mut self, conn: ConnKey) {
        let Some(peer) = self.conns.get_mut(&conn) else {
            return;
        };
        let want = self
            .progress
            .have()
            .missing_from(&peer.have)
            .next()
            .is_some();
        if want && !peer.am_interested {
            peer.am_interested = true;
            self.actions.push_back(Action::Send {
                conn,
                msg: Message::Interested,
            });
        } else if !want && peer.am_interested {
            peer.am_interested = false;
            self.actions.push_back(Action::Send {
                conn,
                msg: Message::NotInterested,
            });
        }
    }

    fn fill_requests(&mut self, conn: ConnKey, now: SimTime) {
        loop {
            let Some(peer) = self.conns.get(&conn) else {
                return;
            };
            if peer.peer_choking || !peer.am_interested {
                return;
            }
            let inflight_bytes: u64 = peer.inflight.iter().map(|b| b.len as u64).sum();
            if inflight_bytes >= self.config.request_pipeline_bytes {
                return;
            }
            // A snubbed peer keeps a single probe request outstanding:
            // enough to notice recovery, not enough to strand blocks.
            // Otherwise the strategy may resize the configured pipeline
            // (greedy clients widen it; Honest keeps it).
            let pipeline = if peer.snubbed {
                1
            } else {
                self.config
                    .strategy
                    .pipeline_cap(self.config.request_pipeline)
            };
            let room = pipeline.saturating_sub(peer.inflight.len());
            if room == 0 {
                return;
            }
            // Endgame duplication is restricted to the very tail of the
            // download: duplicating large blocks earlier wastes real
            // bandwidth for marginal latency.
            let missing = self.progress.num_pieces() - self.progress.have().count();
            let endgame = missing <= 3 && self.progress.in_endgame();

            // 1. Finish partial pieces the peer can serve. `partial_pieces`
            //    yields ascending indices, so the first hit is the lowest —
            //    no need to collect and sort the whole set.
            let mut piece_to_request: Option<u32> = self
                .progress
                .partial_pieces()
                .find(|&p| peer.have.get(p) && !self.progress.fully_requested(p));

            // 2. Otherwise start a new piece via the picker.
            if piece_to_request.is_none() {
                let candidates: Vec<u32> = self
                    .progress
                    .have()
                    .missing_from(&peer.have)
                    .filter(|&p| !self.progress.fully_requested(p))
                    .collect();
                if !candidates.is_empty() {
                    let ctx = PickContext {
                        availability: &self.availability,
                        downloaded_fraction: self.progress.downloaded_fraction(),
                        stable_for: now.saturating_since(self.stable_since),
                    };
                    piece_to_request = self.config.picker.pick(&candidates, &ctx, &mut self.rng);
                }
            }

            // 3. Endgame: duplicate outstanding blocks.
            if piece_to_request.is_none() && endgame {
                let mut missing: Vec<u32> = self.progress.have().missing_from(&peer.have).collect();
                missing.sort_unstable();
                piece_to_request = missing.first().copied();
            }

            let Some(piece) = piece_to_request else {
                return;
            };
            // Respect the byte budget too (at least one block).
            let Some(peer) = self.conns.get(&conn) else {
                return;
            };
            let inflight_bytes: u64 = peer.inflight.iter().map(|b| b.len as u64).sum();
            let byte_budget = self
                .config
                .request_pipeline_bytes
                .saturating_sub(inflight_bytes);
            let block_len = self.progress.block_ref(piece, 0).len.max(1) as u64;
            let room_by_bytes = (byte_budget / block_len).max(1) as usize;
            let blocks =
                self.progress
                    .take_blocks(piece, conn, now, room.min(room_by_bytes), endgame);
            if blocks.is_empty() {
                return;
            }
            let Some(peer) = self.conns.get_mut(&conn) else {
                return;
            };
            for b in blocks {
                peer.inflight.push(b);
                self.actions.push_back(Action::Send {
                    conn,
                    msg: Message::Request(b),
                });
            }
        }
    }

    fn close_conn(&mut self, conn: ConnKey) {
        if self.conns.contains_key(&conn) {
            self.actions.push_back(Action::Close { conn });
            // on_conn_closed will be echoed by the transport; to keep the
            // state machine self-contained also clean up now.
            let now = SimTime::ZERO.max(self.stable_since);
            self.on_conn_closed(conn, now);
        }
    }

    /// Serializes the session's dynamic state.
    ///
    /// The `ClientConfig` largely rides outside the blob (it is rebuilt by
    /// the scenario's `make_config`, including the unserializable
    /// `Box<dyn PiecePicker>`); only the two fields mutated at runtime —
    /// `upload_limit` (LIHD retargets it) and `allow_upload` (role
    /// reversal flips it) — are captured. Metrics instruments are shared
    /// `Arc` cells owned by the embedder's `MetricsHandle` and are
    /// restored by name at that level; re-call [`Client::attach_metrics`]
    /// after [`Client::restore_state`].
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.section("client");
        self.config.upload_limit.snap(w);
        w.put_bool(self.config.allow_upload);
        self.info_hash.snap(w);
        self.peer_id.snap(w);
        self.progress.snap(w);
        snap_hash_map(&self.conns, w);
        self.upload_ready.snap(w);
        w.put_u64(self.next_conn);
        self.availability.snap(w);
        snap_hash_map(&self.addrs, w);
        self.choker.snap(w);
        snap_hash_map(&self.credit, w);
        snap_hash_map(&self.served, w);
        snap_hash_map(&self.id_addr, w);
        self.actions.snap(w);
        self.rng.snap(w);
        self.backoff_rng.snap(w);
        self.upload_bucket.snap(w);
        self.next_announce.snap(w);
        self.stable_since.snap(w);
        w.put_bool(self.completed_reported);
        self.last_announce.snap(w);
        self.min_reannounce.snap(w);
        self.last_decay.snap(w);
        self.stats.snap(w);
        self.own_addr.snap(w);
        snap_hash_map(&self.gossip_age, w);
        self.next_pex.snap(w);
        w.put_u32(self.announce_fail_streak);
        // Strategy state rides at the tail: the config (and thus the
        // strategy *type*) is rebuilt by the scenario's `make_config`,
        // and `load` restores the instance's mutable state onto it.
        self.config.strategy.save(w);
    }

    /// Restores state saved by [`Client::save_state`] onto a client freshly
    /// built from the same scenario configuration. See `save_state` for
    /// what is deliberately left to the rebuild.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) {
        r.section("client");
        self.config.upload_limit = Snap::unsnap(r);
        self.config.allow_upload = r.get_bool();
        self.info_hash = Snap::unsnap(r);
        self.peer_id = Snap::unsnap(r);
        self.progress = Snap::unsnap(r);
        self.conns = unsnap_hash_map(r);
        self.upload_ready = Snap::unsnap(r);
        self.next_conn = r.get_u64();
        self.availability = Snap::unsnap(r);
        self.addrs = unsnap_hash_map(r);
        self.choker = Snap::unsnap(r);
        self.credit = unsnap_hash_map(r);
        self.served = unsnap_hash_map(r);
        self.id_addr = unsnap_hash_map(r);
        self.actions = Snap::unsnap(r);
        self.rng = Snap::unsnap(r);
        self.backoff_rng = Snap::unsnap(r);
        self.upload_bucket = Snap::unsnap(r);
        self.next_announce = Snap::unsnap(r);
        self.stable_since = Snap::unsnap(r);
        self.completed_reported = r.get_bool();
        self.last_announce = Snap::unsnap(r);
        self.min_reannounce = Snap::unsnap(r);
        self.last_decay = Snap::unsnap(r);
        self.stats = Snap::unsnap(r);
        self.own_addr = Snap::unsnap(r);
        self.gossip_age = unsnap_hash_map(r);
        self.next_pex = Snap::unsnap(r);
        self.announce_fail_streak = r.get_u32();
        self.config.strategy.load(r);
    }
}

use simnet::snapshot::{snap_hash_map, unsnap_hash_map, Snap, SnapReader, SnapWriter};

impl Snap for Peer {
    fn snap(&self, w: &mut SnapWriter) {
        self.addr.snap(w);
        self.peer_id.snap(w);
        w.put_bool(self.outgoing);
        self.connected_at.snap(w);
        w.put_bool(self.am_choking);
        w.put_bool(self.am_interested);
        w.put_bool(self.peer_choking);
        w.put_bool(self.peer_interested);
        self.have.snap(w);
        self.inflight.snap(w);
        self.upload_queue.snap(w);
        self.download_est.snap(w);
        self.upload_est.snap(w);
        self.last_recv.snap(w);
        self.last_progress.snap(w);
        self.last_keepalive.snap(w);
        w.put_bool(self.snubbed);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        Peer {
            addr: Snap::unsnap(r),
            peer_id: Snap::unsnap(r),
            outgoing: r.get_bool(),
            connected_at: Snap::unsnap(r),
            am_choking: r.get_bool(),
            am_interested: r.get_bool(),
            peer_choking: r.get_bool(),
            peer_interested: r.get_bool(),
            have: Snap::unsnap(r),
            inflight: Snap::unsnap(r),
            upload_queue: Snap::unsnap(r),
            download_est: Snap::unsnap(r),
            upload_est: Snap::unsnap(r),
            last_recv: Snap::unsnap(r),
            last_progress: Snap::unsnap(r),
            last_keepalive: Snap::unsnap(r),
            snubbed: r.get_bool(),
        }
    }
}

impl Snap for AddrState {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.failures);
        self.next_attempt.snap(w);
        w.put_bool(self.connected);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        AddrState {
            failures: r.get_u32(),
            next_attempt: Snap::unsnap(r),
            connected: r.get_bool(),
        }
    }
}

impl Snap for ClientStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.downloaded_payload);
        w.put_u64(self.uploaded_payload);
        w.put_u64(self.connections_opened);
        w.put_u64(self.dial_failures);
        w.put_u64(self.duplicate_blocks);
        w.put_u64(self.snubs);
        w.put_u64(self.keepalive_closes);
        w.put_u64(self.pex_sent);
        w.put_u64(self.pex_received);
        w.put_u64(self.pex_addrs_learned);
        w.put_u64(self.breaker_trips);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        ClientStats {
            downloaded_payload: r.get_u64(),
            uploaded_payload: r.get_u64(),
            connections_opened: r.get_u64(),
            dial_failures: r.get_u64(),
            duplicate_blocks: r.get_u64(),
            snubs: r.get_u64(),
            keepalive_closes: r.get_u64(),
            pex_sent: r.get_u64(),
            pex_received: r.get_u64(),
            pex_addrs_learned: r.get_u64(),
            breaker_trips: r.get_u64(),
        }
    }
}

impl Snap for Action {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Action::Connect { conn, addr } => {
                w.put_u8(0);
                w.put_u64(*conn);
                addr.snap(w);
            }
            Action::Send { conn, msg } => {
                w.put_u8(1);
                w.put_u64(*conn);
                msg.snap(w);
            }
            Action::Close { conn } => {
                w.put_u8(2);
                w.put_u64(*conn);
            }
            Action::Announce { event } => {
                w.put_u8(3);
                event.snap(w);
            }
            Action::PieceCompleted { piece } => {
                w.put_u8(4);
                w.put_u32(*piece);
            }
            Action::Completed => w.put_u8(5),
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        match r.get_u8() {
            0 => Action::Connect {
                conn: r.get_u64(),
                addr: Snap::unsnap(r),
            },
            1 => Action::Send {
                conn: r.get_u64(),
                msg: Snap::unsnap(r),
            },
            2 => Action::Close { conn: r.get_u64() },
            3 => Action::Announce {
                event: Snap::unsnap(r),
            },
            4 => Action::PieceCompleted { piece: r.get_u32() },
            5 => Action::Completed,
            t => panic!("unknown Action tag {t} in snapshot"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PIECE: u32 = 64;
    const LEN: u64 = 256; // 4 pieces
    const BLOCK: u32 = 16 * 1024; // default block bigger than piece: 1 block per piece

    fn client(seeded: bool) -> Client {
        let progress = if seeded {
            TorrentProgress::complete(PIECE, LEN)
        } else {
            TorrentProgress::new(PIECE, LEN)
        };
        let _ = BLOCK;
        Client::with_progress(
            ClientConfig::default(),
            InfoHash([1; 20]),
            PeerId([7; 20]),
            progress,
            SimAddr(1),
            SimRng::new(9),
        )
    }

    fn drain(c: &mut Client) -> Vec<Action> {
        std::iter::from_fn(|| c.poll_action()).collect()
    }

    fn sends_to(actions: &[Action], conn: ConnKey) -> Vec<&Message> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { conn: c, msg } if *c == conn => Some(msg),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn start_announces() {
        let mut c = client(false);
        c.start(SimTime::ZERO);
        let actions = drain(&mut c);
        assert_eq!(
            actions,
            vec![Action::Announce {
                event: AnnounceEvent::Started
            }]
        );
    }

    #[test]
    fn connection_sends_handshake_and_bitfield() {
        let mut c = client(false);
        let now = SimTime::ZERO;
        c.on_connected(1, SimAddr(5), now);
        let actions = drain(&mut c);
        let msgs = sends_to(&actions, 1);
        assert!(matches!(msgs[0], Message::Handshake { .. }));
        assert!(matches!(msgs[1], Message::Bitfield(_)));
    }

    #[test]
    fn interest_follows_bitfields() {
        let mut c = client(false);
        let now = SimTime::ZERO;
        c.on_connected(1, SimAddr(5), now);
        drain(&mut c);
        c.on_message(
            1,
            Message::Handshake {
                info_hash: InfoHash([1; 20]),
                peer_id: PeerId([2; 20]),
            },
            now,
        );
        // Peer has pieces we lack -> Interested.
        c.on_message(1, Message::Bitfield(Bitfield::full(4)), now);
        let actions = drain(&mut c);
        assert!(sends_to(&actions, 1)
            .iter()
            .any(|m| matches!(m, Message::Interested)));
    }

    #[test]
    fn wrong_info_hash_closes() {
        let mut c = client(false);
        let now = SimTime::ZERO;
        c.on_connected(1, SimAddr(5), now);
        drain(&mut c);
        c.on_message(
            1,
            Message::Handshake {
                info_hash: InfoHash([99; 20]),
                peer_id: PeerId([2; 20]),
            },
            now,
        );
        let actions = drain(&mut c);
        assert!(actions.contains(&Action::Close { conn: 1 }));
        assert_eq!(c.connection_count(), 0);
    }

    #[test]
    fn unchoke_triggers_requests_and_piece_completes() {
        let mut c = client(false);
        let now = SimTime::ZERO;
        c.on_connected(1, SimAddr(5), now);
        drain(&mut c);
        c.on_message(
            1,
            Message::Handshake {
                info_hash: InfoHash([1; 20]),
                peer_id: PeerId([2; 20]),
            },
            now,
        );
        c.on_message(1, Message::Bitfield(Bitfield::full(4)), now);
        drain(&mut c);
        c.on_message(1, Message::Unchoke, now);
        let actions = drain(&mut c);
        let requests: Vec<BlockRef> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: Message::Request(b),
                    ..
                } => Some(*b),
                _ => None,
            })
            .collect();
        // 4 pieces of 64 bytes = 4 single-block pieces, pipeline 8 covers all.
        assert_eq!(requests.len(), 4);
        // Deliver all blocks; torrent completes.
        for b in requests {
            c.on_message(1, Message::Piece(b), now);
        }
        let actions = drain(&mut c);
        assert!(actions.contains(&Action::Completed));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Announce {
                event: AnnounceEvent::Completed
            }
        )));
        // Have messages broadcast per piece.
        let haves = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: Message::Have { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(haves, 4);
        assert!(c.is_seed());
        assert_eq!(c.stats().downloaded_payload, LEN);
    }

    #[test]
    fn requests_ignored_while_choking_peer() {
        let mut c = client(true);
        let now = SimTime::ZERO;
        c.on_connected(1, SimAddr(5), now);
        drain(&mut c);
        // Peer asks but we never unchoked them.
        c.on_message(
            1,
            Message::Request(BlockRef {
                piece: 0,
                offset: 0,
                len: 64,
            }),
            now,
        );
        let actions = drain(&mut c);
        assert!(!actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::Piece(_),
                ..
            }
        )));
    }

    #[test]
    fn seed_serves_after_rechoke() {
        let mut c = client(true);
        let now = SimTime::ZERO;
        c.on_connected(1, SimAddr(5), now);
        drain(&mut c);
        c.on_message(
            1,
            Message::Handshake {
                info_hash: InfoHash([1; 20]),
                peer_id: PeerId([2; 20]),
            },
            now,
        );
        c.on_message(1, Message::Interested, now);
        c.on_tick(now); // rechoke runs, peer unchoked
        let actions = drain(&mut c);
        assert!(sends_to(&actions, 1)
            .iter()
            .any(|m| matches!(m, Message::Unchoke)));
        let block = BlockRef {
            piece: 0,
            offset: 0,
            len: 64,
        };
        c.on_message(1, Message::Request(block), now);
        let actions = drain(&mut c);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Send { msg: Message::Piece(b), .. } if *b == block)));
        assert_eq!(c.stats().uploaded_payload, 64);
    }

    #[test]
    fn upload_disabled_never_serves() {
        let mut c = client(true);
        c.config.allow_upload = false;
        let now = SimTime::ZERO;
        c.on_connected(1, SimAddr(5), now);
        drain(&mut c);
        c.on_message(1, Message::Interested, now);
        c.on_tick(now);
        drain(&mut c);
        c.on_message(
            1,
            Message::Request(BlockRef {
                piece: 0,
                offset: 0,
                len: 64,
            }),
            now,
        );
        let actions = drain(&mut c);
        assert!(!actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::Piece(_),
                ..
            }
        )));
    }

    #[test]
    fn upload_limit_defers_service() {
        let mut c = client(true);
        c.set_upload_limit(Some(64.0)); // one block per second
        let now = SimTime::ZERO;
        c.on_connected(1, SimAddr(5), now);
        drain(&mut c);
        c.on_message(1, Message::Interested, now);
        c.on_tick(now);
        drain(&mut c);
        for piece in 0..4u32 {
            c.on_message(
                1,
                Message::Request(BlockRef {
                    piece,
                    offset: 0,
                    len: 64,
                }),
                now,
            );
        }
        let served_now = drain(&mut c)
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: Message::Piece(_),
                        ..
                    }
                )
            })
            .count();
        assert!(served_now < 4, "bucket must defer some blocks");
        // Time passes; ticks drain the queue.
        let mut total = served_now;
        for s in 1..=5u64 {
            c.on_tick(SimTime::from_secs(s));
            total += drain(&mut c)
                .iter()
                .filter(|a| {
                    matches!(
                        a,
                        Action::Send {
                            msg: Message::Piece(_),
                            ..
                        }
                    )
                })
                .count();
        }
        assert_eq!(total, 4);
    }

    #[test]
    fn tracker_response_spawns_dials() {
        let mut c = client(false);
        let now = SimTime::ZERO;
        let resp = AnnounceResponse {
            interval: SimDuration::from_mins(15),
            min_interval: SimDuration::ZERO,
            peers: vec![
                (PeerId([2; 20]), SimAddr(10)),
                (PeerId([3; 20]), SimAddr(11)),
            ],
            complete: 1,
            incomplete: 1,
        };
        c.on_tracker_response(&resp, now);
        let actions = drain(&mut c);
        let dials: Vec<SimAddr> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Connect { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(dials, vec![SimAddr(10), SimAddr(11)]);
    }

    #[test]
    fn own_address_is_not_dialled() {
        let mut c = client(false);
        let resp = AnnounceResponse {
            interval: SimDuration::from_mins(15),
            min_interval: SimDuration::ZERO,
            peers: vec![(PeerId([2; 20]), SimAddr(1))], // our own addr
            complete: 0,
            incomplete: 1,
        };
        c.on_tracker_response(&resp, SimTime::ZERO);
        let actions = drain(&mut c);
        assert!(actions.iter().all(|a| !matches!(a, Action::Connect { .. })));
    }

    #[test]
    fn dial_failure_backs_off() {
        let mut c = client(false);
        let now = SimTime::ZERO;
        let resp = AnnounceResponse {
            interval: SimDuration::from_mins(15),
            min_interval: SimDuration::ZERO,
            peers: vec![(PeerId([2; 20]), SimAddr(10))],
            complete: 0,
            incomplete: 1,
        };
        c.on_tracker_response(&resp, now);
        drain(&mut c);
        c.on_conn_failed(SimAddr(10), now);
        // Immediately after failure: no new dial.
        c.on_tick(now);
        assert!(drain(&mut c)
            .iter()
            .all(|a| !matches!(a, Action::Connect { .. })));
        // After the backoff doubles out, the dial is retried.
        c.on_tick(SimTime::from_secs(120));
        assert!(drain(&mut c)
            .iter()
            .any(|a| matches!(a, Action::Connect { addr, .. } if *addr == SimAddr(10))));
        assert_eq!(c.stats().dial_failures, 1);
    }

    #[test]
    fn credit_accrues_by_peer_id_and_survives_disconnect() {
        let mut c = client(false);
        let now = SimTime::ZERO;
        let id = PeerId([2; 20]);
        c.on_connected(1, SimAddr(5), now);
        drain(&mut c);
        c.on_message(
            1,
            Message::Handshake {
                info_hash: InfoHash([1; 20]),
                peer_id: id,
            },
            now,
        );
        c.on_message(1, Message::Bitfield(Bitfield::full(4)), now);
        c.on_message(1, Message::Unchoke, now);
        drain(&mut c);
        let block = BlockRef {
            piece: 0,
            offset: 0,
            len: 64,
        };
        // Must actually be an in-flight block; find it from requests.
        let _ = block;
        let reqs: Vec<BlockRef> = c.conns.get(&1).unwrap().inflight.clone();
        c.on_message(1, Message::Piece(reqs[0]), now);
        assert!(c.credit_of(id) > 0.0);
        let before = c.credit_of(id);
        c.on_conn_closed(1, now);
        assert_eq!(c.credit_of(id), before, "credit keyed by id persists");
        // A different id starts from zero — the mobility pathology.
        assert_eq!(c.credit_of(PeerId([3; 20])), 0.0);
    }

    #[test]
    fn conn_close_requeues_blocks() {
        let mut c = client(false);
        let now = SimTime::ZERO;
        c.on_connected(1, SimAddr(5), now);
        drain(&mut c);
        c.on_message(
            1,
            Message::Handshake {
                info_hash: InfoHash([1; 20]),
                peer_id: PeerId([2; 20]),
            },
            now,
        );
        c.on_message(1, Message::Bitfield(Bitfield::full(4)), now);
        c.on_message(1, Message::Unchoke, now);
        drain(&mut c);
        assert!(c.progress.in_flight_total() > 0);
        c.on_conn_closed(1, now);
        assert_eq!(c.progress.in_flight_total(), 0);
        assert_eq!(c.connection_count(), 0);
    }

    // ------------------------------------------------------------------
    // Armed lifecycle
    // ------------------------------------------------------------------

    fn armed_client(res: ResilienceConfig) -> Client {
        Client::with_progress(
            ClientConfig {
                resilience: res,
                ..ClientConfig::default()
            },
            InfoHash([1; 20]),
            PeerId([7; 20]),
            TorrentProgress::new(PIECE, LEN),
            SimAddr(1),
            SimRng::new(9),
        )
    }

    /// Establishes conn 1 to SimAddr(5) with a full remote bitfield and
    /// an unchoke, leaving requests in flight.
    fn establish(c: &mut Client, now: SimTime) {
        c.seed_known_addrs(&[SimAddr(5)], now);
        c.on_connected(1, SimAddr(5), now);
        drain(c);
        c.on_message(
            1,
            Message::Handshake {
                info_hash: InfoHash([1; 20]),
                peer_id: PeerId([2; 20]),
            },
            now,
        );
        c.on_message(1, Message::Bitfield(Bitfield::full(4)), now);
        c.on_message(1, Message::Unchoke, now);
        drain(c);
    }

    #[test]
    fn armed_dial_failures_escalate_then_exhaust() {
        let mut res = ResilienceConfig::armed();
        res.max_dial_attempts = 4;
        let mut c = armed_client(res);
        let now = SimTime::ZERO;
        c.seed_known_addrs(&[SimAddr(10)], now);
        let mut prev_gap = SimDuration::ZERO;
        for _ in 0..3 {
            c.on_conn_failed(SimAddr(10), now);
            let (_, _, next, _) = c.addr_states()[0];
            let gap = next.saturating_since(now);
            assert!(gap > prev_gap, "backoff must escalate: {gap:?} vs {prev_gap:?}");
            assert_eq!(c.lifecycle_of(SimAddr(10), now), Some(ConnState::BackingOff));
            prev_gap = gap;
        }
        // Fourth failure exhausts the budget: the address is dead and
        // never dialled again.
        c.on_conn_failed(SimAddr(10), now);
        assert_eq!(c.lifecycle_of(SimAddr(10), now), Some(ConnState::Dead));
        c.on_tick(SimTime::from_secs(1_000_000));
        assert!(drain(&mut c)
            .iter()
            .all(|a| !matches!(a, Action::Connect { .. })));
    }

    #[test]
    fn snub_and_unsnub_round_trip() {
        let mut res = ResilienceConfig::armed();
        res.snub_timeout = SimDuration::from_secs(10);
        let mut c = armed_client(res);
        establish(&mut c, SimTime::ZERO);
        assert_eq!(c.is_snubbed(1), Some(false));
        // No piece for the snub timeout: the peer is snubbed, in-flight
        // blocks are cancelled, and a single probe request remains.
        c.on_tick(SimTime::from_secs(10));
        let actions = drain(&mut c);
        assert_eq!(c.is_snubbed(1), Some(true));
        assert_eq!(c.stats().snubs, 1);
        assert!(sends_to(&actions, 1)
            .iter()
            .any(|m| matches!(m, Message::Cancel(_))));
        let probes = c.conns.get(&1).unwrap().inflight.clone();
        assert_eq!(probes.len(), 1, "snubbed pipeline collapses to a probe");
        // The probe is answered: the peer unsnubs and the pipeline
        // refills past one request.
        c.on_message(1, Message::Piece(probes[0]), SimTime::from_secs(11));
        drain(&mut c);
        assert_eq!(c.is_snubbed(1), Some(false));
        assert!(c.conns.get(&1).unwrap().inflight.len() > 1);
    }

    #[test]
    fn zero_credit_entries_evicted_once_peer_is_dead() {
        let mut res = ResilienceConfig::armed();
        res.max_dial_attempts = 2;
        let mut c = armed_client(res);
        establish(&mut c, SimTime::ZERO);
        // The handshake minted a zero-credit entry for the peer-id.
        assert_eq!(c.standing_table_sizes(), (1, 0, 1));
        // Live connection: the entry survives rechokes even at zero.
        c.on_tick(SimTime::from_secs(50));
        drain(&mut c);
        assert_eq!(c.standing_table_sizes(), (1, 0, 1));
        // The peer disconnects and its dial budget is exhausted: Dead.
        c.on_conn_closed(1, SimTime::from_secs(60));
        c.on_conn_failed(SimAddr(5), SimTime::from_secs(61));
        c.on_conn_failed(SimAddr(5), SimTime::from_secs(62));
        assert_eq!(
            c.lifecycle_of(SimAddr(5), SimTime::from_secs(62)),
            Some(ConnState::Dead)
        );
        // The next rechoke reclaims the orphaned zero-credit entry.
        c.on_tick(SimTime::from_secs(70));
        drain(&mut c);
        assert_eq!(c.standing_table_sizes(), (0, 0, 0), "dead zero-credit leak");
    }

    #[test]
    fn earned_credit_survives_death_until_fully_decayed() {
        let mut res = ResilienceConfig::armed();
        res.max_dial_attempts = 2;
        let mut c = armed_client(res);
        establish(&mut c, SimTime::ZERO);
        // The peer delivers a block: its id now holds real credit.
        let block = c.conns.get(&1).unwrap().inflight[0];
        c.on_message(1, Message::Piece(block), SimTime::from_secs(1));
        drain(&mut c);
        assert!(c.credit_of(PeerId([2; 20])) > 0.0);
        // Disconnect and exhaust the dial budget: Dead, but standing is
        // the identity-retention contract — the entry must survive while
        // any credit remains, so a returning peer-id finds it.
        c.on_conn_closed(1, SimTime::from_secs(2));
        c.on_conn_failed(SimAddr(5), SimTime::from_secs(3));
        c.on_conn_failed(SimAddr(5), SimTime::from_secs(4));
        c.on_tick(SimTime::from_secs(100));
        drain(&mut c);
        assert!(
            c.credit_of(PeerId([2; 20])) > 0.0,
            "nonzero credit evicted while peer Dead"
        );
        assert_eq!(c.standing_table_sizes().0, 1);
        // Hours later the credit has decayed through the flush epsilon:
        // now (and only now) the dead entry is reclaimed.
        c.on_tick(SimTime::from_secs(20_000));
        drain(&mut c);
        assert_eq!(c.standing_table_sizes(), (0, 0, 0), "decayed entry kept");
    }

    #[test]
    fn free_rider_strategy_never_serves_requests() {
        let mut c = Client::with_progress(
            ClientConfig {
                strategy: Box::new(crate::strategy::FreeRider),
                ..ClientConfig::default()
            },
            InfoHash([1; 20]),
            PeerId([7; 20]),
            TorrentProgress::complete(PIECE, LEN),
            SimAddr(1),
            SimRng::new(9),
        );
        let now = SimTime::ZERO;
        c.on_connected(1, SimAddr(5), now);
        drain(&mut c);
        c.on_message(
            1,
            Message::Handshake {
                info_hash: InfoHash([1; 20]),
                peer_id: PeerId([2; 20]),
            },
            now,
        );
        c.on_message(1, Message::Interested, now);
        c.on_tick(SimTime::from_secs(1)); // rechoke may unchoke the peer
        drain(&mut c);
        c.on_message(
            1,
            Message::Request(c.progress.block_ref(0, 0)),
            SimTime::from_secs(2),
        );
        let actions = drain(&mut c);
        assert!(
            sends_to(&actions, 1)
                .iter()
                .all(|m| !matches!(m, Message::Piece(_))),
            "free rider served a request"
        );
        assert_eq!(c.stats().uploaded_payload, 0);
    }

    #[test]
    fn silent_connection_closes_into_backoff() {
        let mut res = ResilienceConfig::armed();
        res.keepalive_interval = SimDuration::from_secs(8);
        res.keepalive_timeout = SimDuration::from_secs(20);
        let mut c = armed_client(res);
        establish(&mut c, SimTime::ZERO);
        // Idle but not silent long enough: a keepalive goes out.
        c.on_tick(SimTime::from_secs(8));
        let actions = drain(&mut c);
        assert!(sends_to(&actions, 1)
            .iter()
            .any(|m| matches!(m, Message::KeepAlive)));
        // Total silence past the timeout: closed into backing-off.
        c.on_tick(SimTime::from_secs(20));
        let actions = drain(&mut c);
        assert!(actions.contains(&Action::Close { conn: 1 }));
        assert_eq!(c.stats().keepalive_closes, 1);
        assert_eq!(c.connection_count(), 0);
        assert_eq!(
            c.lifecycle_of(SimAddr(5), SimTime::from_secs(20)),
            Some(ConnState::BackingOff)
        );
    }

    #[test]
    fn incoming_traffic_defers_the_silence_close() {
        let mut res = ResilienceConfig::armed();
        res.keepalive_timeout = SimDuration::from_secs(20);
        let mut c = armed_client(res);
        establish(&mut c, SimTime::ZERO);
        // The remote's keepalive resets the silence clock.
        c.on_message(1, Message::KeepAlive, SimTime::from_secs(15));
        c.on_tick(SimTime::from_secs(20));
        drain(&mut c);
        assert_eq!(c.connection_count(), 1, "live link must not be reaped");
    }

    #[test]
    fn stall_escalates_backoff_when_armed_but_not_unarmed() {
        // Unarmed: a stall is the legacy close — flat redial delay, no
        // failure escalation.
        let mut c = client(false);
        let now = SimTime::ZERO;
        establish(&mut c, now);
        c.on_conn_stalled(1, now);
        let (_, failures, next, _) = c.addr_states()[0];
        assert_eq!(failures, 0);
        assert_eq!(next.saturating_since(now), SimDuration::from_secs(30));
        // Armed: a stall starts the backoff ladder, a failed redial
        // climbs it, and a successful reconnection resets it.
        let mut c = armed_client(ResilienceConfig::armed());
        establish(&mut c, now);
        c.on_conn_stalled(1, now);
        let (_, failures, next1, _) = c.addr_states()[0];
        assert_eq!(failures, 1);
        assert!(next1 > now, "stall must enter backing-off");
        c.on_conn_failed(SimAddr(5), now);
        let (_, failures, next2, _) = c.addr_states()[0];
        assert_eq!(failures, 2);
        assert!(
            next2.saturating_since(now) > next1.saturating_since(now),
            "a failed redial must wait longer than the first stall"
        );
        c.on_connected(2, SimAddr(5), now);
        drain(&mut c);
        assert_eq!(c.addr_states()[0].1, 0, "success resets the ladder");
    }

    // ------------------------------------------------------------------
    // PEX gossip and the announce circuit breaker
    // ------------------------------------------------------------------

    fn pex_client(pex: PexConfig) -> Client {
        Client::with_progress(
            ClientConfig {
                pex,
                ..ClientConfig::default()
            },
            InfoHash([1; 20]),
            PeerId([7; 20]),
            TorrentProgress::new(PIECE, LEN),
            SimAddr(1),
            SimRng::new(9),
        )
    }

    fn pex_sends(actions: &[Action]) -> Vec<(ConnKey, Vec<(SimAddr, u32)>)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    conn,
                    msg: Message::Pex { peers },
                } => Some((*conn, peers.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn pex_gossip_carries_fresh_connected_peers() {
        let mut c = pex_client(PexConfig {
            enabled: true,
            ..PexConfig::default()
        });
        establish(&mut c, SimTime::ZERO);
        c.on_tick(SimTime::from_secs(1));
        let gossip = pex_sends(&drain(&mut c));
        assert_eq!(gossip.len(), 1, "one PEX per connection per round");
        // Live connections are refreshed to age 0 at gossip time.
        assert_eq!(gossip[0].1, vec![(SimAddr(5), 0)]);
        // The next round waits out the gossip interval.
        c.on_tick(SimTime::from_secs(2));
        assert!(pex_sends(&drain(&mut c)).is_empty());
        c.on_tick(SimTime::from_secs(61));
        assert_eq!(pex_sends(&drain(&mut c)).len(), 1);
    }

    #[test]
    fn received_pex_seeds_dials_and_freshness() {
        let mut c = pex_client(PexConfig {
            enabled: true,
            ..PexConfig::default()
        });
        let now = SimTime::from_secs(100);
        establish(&mut c, now);
        c.on_message(
            1,
            Message::Pex {
                peers: vec![(SimAddr(10), 40), (SimAddr(1), 0)],
            },
            now,
        );
        let actions = drain(&mut c);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Connect { addr, .. } if *addr == SimAddr(10))),
            "gossiped address must be dialled"
        );
        assert_eq!(c.stats().pex_addrs_learned, 1);
        // Our own address never enters the book; the gossiped entry is
        // dated by its age.
        assert_eq!(
            c.pex_book(),
            vec![(SimAddr(5), now), (SimAddr(10), SimTime::from_secs(60))]
        );
    }

    #[test]
    fn pex_disabled_ignores_gossip() {
        let mut c = client(false);
        let now = SimTime::ZERO;
        establish(&mut c, now);
        c.on_message(
            1,
            Message::Pex {
                peers: vec![(SimAddr(10), 0)],
            },
            now,
        );
        let actions = drain(&mut c);
        assert!(actions.iter().all(|a| !matches!(a, Action::Connect { .. })));
        assert!(c.pex_book().is_empty());
        assert_eq!(c.stats().pex_received, 0);
        // And a disabled client never gossips.
        c.on_tick(SimTime::from_secs(3600));
        assert!(pex_sends(&drain(&mut c)).is_empty());
    }

    #[test]
    fn stale_pex_entries_are_dropped_and_dead_addrs_need_newer_evidence() {
        let mut res = ResilienceConfig::armed();
        res.max_dial_attempts = 2;
        let mut c = Client::with_progress(
            ClientConfig {
                resilience: res,
                pex: PexConfig {
                    enabled: true,
                    ..PexConfig::default()
                },
                ..ClientConfig::default()
            },
            InfoHash([1; 20]),
            PeerId([7; 20]),
            TorrentProgress::new(PIECE, LEN),
            SimAddr(1),
            SimRng::new(9),
        );
        let now = SimTime::from_secs(1000);
        establish(&mut c, now);
        // Past the staleness horizon: never enters the book.
        c.on_message(
            1,
            Message::Pex {
                peers: vec![(SimAddr(20), 700)],
            },
            now,
        );
        drain(&mut c);
        assert_eq!(c.pex_book(), vec![(SimAddr(5), now)]);
        // Learn and kill an address: two failed dials exhaust the budget.
        c.on_message(
            1,
            Message::Pex {
                peers: vec![(SimAddr(30), 10)],
            },
            now,
        );
        drain(&mut c);
        c.on_conn_failed(SimAddr(30), now);
        c.on_conn_failed(SimAddr(30), now);
        assert_eq!(c.lifecycle_of(SimAddr(30), now), Some(ConnState::Dead));
        // Re-gossip with *older* freshness: stays dead, no dial.
        c.on_message(
            1,
            Message::Pex {
                peers: vec![(SimAddr(30), 20)],
            },
            now,
        );
        drain(&mut c);
        assert_eq!(c.lifecycle_of(SimAddr(30), now), Some(ConnState::Dead));
        // Strictly newer evidence revives it.
        let later = SimTime::from_secs(1060);
        c.on_message(
            1,
            Message::Pex {
                peers: vec![(SimAddr(30), 0)],
            },
            later,
        );
        let actions = drain(&mut c);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Connect { addr, .. } if *addr == SimAddr(30))));
    }

    #[test]
    fn breaker_opens_after_streak_and_closes_on_response() {
        let res = ResilienceConfig {
            breaker_threshold: 2,
            breaker_cooloff: SimDuration::from_secs(300),
            ..ResilienceConfig::default()
        };
        let mut c = armed_client(res);
        c.start(SimTime::ZERO);
        drain(&mut c);
        let now = SimTime::from_secs(10);
        // First failure: the backoff ladder, breaker still closed.
        c.on_announce_failed(now);
        assert!(!c.breaker_is_open());
        assert_eq!(c.announce_fail_streak(), 1);
        // Second failure: the breaker opens and parks the next probe a
        // full cooloff away.
        c.on_announce_failed(now);
        assert!(c.breaker_is_open());
        assert_eq!(c.stats().breaker_trips, 1);
        // While open, the empty-swarm early re-announce is suppressed…
        c.on_tick(SimTime::from_secs(200));
        assert!(drain(&mut c)
            .iter()
            .all(|a| !matches!(a, Action::Announce { .. })));
        // …but the scheduled cooloff probe still goes out.
        c.on_tick(SimTime::from_secs(310));
        assert!(drain(&mut c)
            .iter()
            .any(|a| matches!(a, Action::Announce { .. })));
        // A served announce closes the breaker.
        let resp = AnnounceResponse {
            interval: SimDuration::from_mins(15),
            min_interval: SimDuration::ZERO,
            peers: vec![],
            complete: 0,
            incomplete: 0,
        };
        c.on_tracker_response(&resp, SimTime::from_secs(311));
        assert!(!c.breaker_is_open());
        assert_eq!(c.announce_fail_streak(), 0);
    }

    #[test]
    fn min_reannounce_resets_to_default_on_zero() {
        let mut c = client(false);
        let resp = |min: SimDuration| AnnounceResponse {
            interval: SimDuration::from_mins(15),
            min_interval: min,
            peers: vec![],
            complete: 0,
            incomplete: 0,
        };
        c.on_tracker_response(&resp(SimDuration::from_secs(240)), SimTime::ZERO);
        assert_eq!(c.min_reannounce(), SimDuration::from_secs(240));
        // The tracker relaxing back to "unspecified" must not leave the
        // old stricter floor pinned.
        c.on_tracker_response(&resp(SimDuration::ZERO), SimTime::from_secs(1));
        assert_eq!(c.min_reannounce(), DEFAULT_MIN_REANNOUNCE);
    }
}
