//! Magnet link parsing (BEP 9 subset).
//!
//! `magnet:?xt=urn:btih:<40-hex>&dn=<name>&tr=<tracker>` — the form that
//! replaced `.torrent` files for swarm entry. Only the fields the
//! simulator uses are parsed: the info-hash (`xt`), display name (`dn`),
//! and tracker list (`tr`, repeatable).

use crate::metainfo::InfoHash;
use std::fmt;

/// A parsed magnet link.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MagnetLink {
    /// The swarm's info-hash.
    pub info_hash: InfoHash,
    /// Display name (`dn`), if present.
    pub name: Option<String>,
    /// Tracker identifiers (`tr`), in order of appearance.
    pub trackers: Vec<String>,
}

/// Errors parsing a magnet link.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MagnetError {
    /// Not a `magnet:?` URI.
    NotMagnet,
    /// No `xt=urn:btih:` parameter.
    MissingInfoHash,
    /// The info-hash was not valid 40-character hex.
    BadInfoHash(String),
}

impl fmt::Display for MagnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagnetError::NotMagnet => write!(f, "not a magnet URI"),
            MagnetError::MissingInfoHash => write!(f, "missing xt=urn:btih parameter"),
            MagnetError::BadInfoHash(e) => write!(f, "bad info-hash: {e}"),
        }
    }
}

impl std::error::Error for MagnetError {}

/// Minimal percent-decoding (enough for `dn` names).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

impl MagnetLink {
    /// Parses a magnet URI.
    ///
    /// # Errors
    ///
    /// See [`MagnetError`].
    pub fn parse(uri: &str) -> Result<MagnetLink, MagnetError> {
        let rest = uri.strip_prefix("magnet:?").ok_or(MagnetError::NotMagnet)?;
        let mut info_hash = None;
        let mut name = None;
        let mut trackers = Vec::new();
        for pair in rest.split('&') {
            let Some((key, value)) = pair.split_once('=') else {
                continue;
            };
            match key {
                "xt" => {
                    if let Some(hex) = value.strip_prefix("urn:btih:") {
                        info_hash =
                            Some(InfoHash::from_hex(hex).map_err(MagnetError::BadInfoHash)?);
                    }
                }
                "dn" => name = Some(percent_decode(value)),
                "tr" => trackers.push(percent_decode(value)),
                _ => {}
            }
        }
        Ok(MagnetLink {
            info_hash: info_hash.ok_or(MagnetError::MissingInfoHash)?,
            name,
            trackers,
        })
    }

    /// Renders back to a magnet URI (hex info-hash form, names and
    /// trackers unescaped where safe).
    pub fn to_uri(&self) -> String {
        let mut out = format!("magnet:?xt=urn:btih:{}", self.info_hash.to_hex());
        if let Some(n) = &self.name {
            out.push_str("&dn=");
            out.push_str(&n.replace(' ', "+"));
        }
        for t in &self.trackers {
            out.push_str("&tr=");
            out.push_str(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex40(byte: u8) -> String {
        format!("{byte:02x}").repeat(20)
    }

    #[test]
    fn parses_full_link() {
        let uri = format!(
            "magnet:?xt=urn:btih:{}&dn=Fedora-7-KDE-Live-i686.iso&tr=http%3A%2F%2Ftracker",
            hex40(0xAB)
        );
        let m = MagnetLink::parse(&uri).unwrap();
        assert_eq!(m.info_hash, InfoHash([0xAB; 20]));
        assert_eq!(m.name.as_deref(), Some("Fedora-7-KDE-Live-i686.iso"));
        assert_eq!(m.trackers, vec!["http://tracker".to_string()]);
    }

    #[test]
    fn roundtrips() {
        let m = MagnetLink {
            info_hash: InfoHash([7; 20]),
            name: Some("demo file".into()),
            trackers: vec!["sim-tracker".into()],
        };
        let back = MagnetLink::parse(&m.to_uri()).unwrap();
        assert_eq!(back.info_hash, m.info_hash);
        assert_eq!(back.name.as_deref(), Some("demo file"));
        assert_eq!(back.trackers, m.trackers);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(MagnetLink::parse("http://x"), Err(MagnetError::NotMagnet));
        assert_eq!(
            MagnetLink::parse("magnet:?dn=x"),
            Err(MagnetError::MissingInfoHash)
        );
        assert!(matches!(
            MagnetLink::parse("magnet:?xt=urn:btih:zzzz"),
            Err(MagnetError::BadInfoHash(_))
        ));
    }

    #[test]
    fn multiple_trackers_in_order() {
        let uri = format!("magnet:?xt=urn:btih:{}&tr=a&tr=b&tr=c", hex40(1));
        let m = MagnetLink::parse(&uri).unwrap();
        assert_eq!(m.trackers, vec!["a", "b", "c"]);
    }

    #[test]
    fn percent_decoding_handles_plus_and_invalid() {
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
