//! The tracker: per-torrent directory server (paper §2.2).
//!
//! The tracker maintains, for each info-hash it tracks, the set of peers
//! currently in the swarm, and answers announces with up to
//! `max_peers_returned` (50 by default — the number the paper cites)
//! addresses. Peers that stop announcing expire after a multiple of the
//! announce interval; this *tens-of-minutes* staleness is why a fixed peer
//! keeps trying a vanished mobile server for so long (paper §3.5).
//!
//! At service scale many trackers share the announce load: a
//! [`TrackerTier`] routes each info-hash to a deterministic shard (FNV
//! fold of the hash bytes, reduced modulo the shard count), so a single
//! shard outage is a *partial*-service fault that dims only the swarms it
//! owns.

use crate::metainfo::InfoHash;
use crate::peer_id::PeerId;
use simnet::addr::SimAddr;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Tracker parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrackerConfig {
    /// Interval clients are told to re-announce at.
    pub announce_interval: SimDuration,
    /// Floor the response advertises for *early* re-announces (the
    /// `min interval` key): a client that lost all its connections may
    /// re-announce this soon, but no sooner.
    pub min_interval: SimDuration,
    /// Maximum peers returned per announce (the paper cites 50).
    pub max_peers_returned: usize,
    /// A peer missing this many intervals is dropped from the swarm.
    pub expiry_intervals: u32,
    /// Multiplicative jitter spread applied to the interval each
    /// announce response carries, so a swarm's re-announces desynchronise
    /// instead of stampeding the tracker in lockstep. `0.0` (the
    /// default) draws nothing from the RNG — byte-identical to the
    /// fixed-interval behaviour.
    pub interval_jitter: f64,
    /// Overload shedding: announces a shard absorbs per
    /// [`TrackerConfig::shed_window`] before it pushes back. Past the
    /// capacity, responses carry `interval`/`min_interval` scaled by the
    /// overload ratio (capped at [`TrackerConfig::shed_max_scale`]), so
    /// a flash crowd degrades announce *freshness* instead of toppling
    /// the shard. `0` (the default) disables shedding — responses are
    /// byte-identical to the unshedded tracker.
    pub shed_capacity: u64,
    /// Load-accounting window for [`TrackerConfig::shed_capacity`].
    pub shed_window: SimDuration,
    /// Upper bound on the shedding interval multiplier.
    pub shed_max_scale: u32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            announce_interval: SimDuration::from_mins(15),
            min_interval: SimDuration::from_secs(60),
            max_peers_returned: 50,
            expiry_intervals: 2,
            interval_jitter: 0.0,
            shed_capacity: 0,
            shed_window: SimDuration::from_secs(60),
            shed_max_scale: 8,
        }
    }
}

/// Announce event types (BEP 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnnounceEvent {
    /// Joining the swarm.
    Started,
    /// Leaving the swarm.
    Stopped,
    /// Download finished (now a seed).
    Completed,
    /// Routine periodic announce.
    Periodic,
}

/// One announce, as the client would put it on the wire (the fields of
/// the announce URL, minus the byte counters the simulator doesn't
/// model).
#[derive(Clone, Copy, Debug)]
pub struct AnnounceRequest {
    /// The swarm being announced to.
    pub info_hash: InfoHash,
    /// The announcing peer's identity.
    pub peer_id: PeerId,
    /// The address other peers should dial.
    pub addr: SimAddr,
    /// What prompted the announce.
    pub event: AnnounceEvent,
    /// Whether the peer holds the complete file (`left == 0`).
    pub is_seed: bool,
}

/// One tracked swarm member.
#[derive(Clone, Copy, Debug)]
struct TrackedPeer {
    addr: SimAddr,
    last_seen: SimTime,
    seed: bool,
}

/// Response to an announce.
#[derive(Clone, Debug)]
pub struct AnnounceResponse {
    /// Seconds until the client should re-announce.
    pub interval: SimDuration,
    /// Floor for early re-announces. [`SimDuration::ZERO`] means the
    /// tracker did not specify one (clients keep whatever floor they
    /// last learned), matching the key's optionality on the wire.
    pub min_interval: SimDuration,
    /// A random subset of other swarm members.
    pub peers: Vec<(PeerId, SimAddr)>,
    /// Seeds currently tracked in the swarm.
    pub complete: usize,
    /// Leeches currently tracked in the swarm.
    pub incomplete: usize,
}

/// Aggregate swarm statistics returned by a scrape request (the
/// `/scrape` convention real trackers expose).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrapeStats {
    /// Seeds currently tracked.
    pub complete: usize,
    /// Leeches currently tracked.
    pub incomplete: usize,
    /// `Completed` events ever recorded (historical downloads).
    pub downloaded: u64,
}

/// One swarm's membership, laid out for O(1) announces at any size.
///
/// Members live in a dense vector (removal is swap-remove, with the
/// moved member's index patched in `members`); the seed count is kept
/// incrementally; expiry is lazy via a time-ordered queue rather than a
/// full-map retain per announce. A 65k-peer swarm thus serves an
/// announce in O(peers returned), not O(swarm size).
#[derive(Debug, Clone, Default)]
struct Swarm {
    /// Peer-id → index into `list`.
    members: HashMap<PeerId, u32>,
    /// Dense member store; order is insertion-ish (perturbed by
    /// swap-removes) and never exposed directly.
    list: Vec<(PeerId, TrackedPeer)>,
    /// How many members of `list` are seeds, maintained incrementally.
    seeds: usize,
    /// `(last_seen, id)` entries in announce order. A member's newest
    /// entry matches its `last_seen` exactly; older duplicates are
    /// skipped at pop time.
    expiry: VecDeque<(SimTime, PeerId)>,
}

impl Swarm {
    /// Removes the member at dense index `idx`, patching the index of
    /// whichever member the swap-remove moved into its slot.
    fn remove_at(&mut self, idx: u32) {
        let i = idx as usize;
        let (id, peer) = self.list[i];
        if peer.seed {
            self.seeds -= 1;
        }
        self.members.remove(&id);
        self.list.swap_remove(i);
        if i < self.list.len() {
            let moved = self.list[i].0;
            *self.members.get_mut(&moved).expect("moved member indexed") = idx;
        }
    }

    /// Drops every member silent for longer than `horizon` before `now`.
    /// Amortised O(1) per announce: each queue entry is popped exactly
    /// once, and announces push exactly one entry.
    fn expire(&mut self, now: SimTime, horizon: SimDuration) {
        while let Some(&(seen, id)) = self.expiry.front() {
            if now.saturating_since(seen) <= horizon {
                break;
            }
            self.expiry.pop_front();
            if let Some(&idx) = self.members.get(&id) {
                // Only the member's *newest* queue entry may expire it;
                // older entries are superseded by a later re-announce.
                if self.list[idx as usize].1.last_seen == seen {
                    self.remove_at(idx);
                }
            }
        }
    }
}

/// Swarms advanced by the cross-swarm expiry sweep per announce. Two
/// keeps the sweep ahead of swarm creation (each announce can create at
/// most one swarm) so every swarm is visited at least once per
/// tier-wide announce round.
const SWEEP_PER_ANNOUNCE: usize = 2;

/// A tracker serving any number of swarms.
#[derive(Debug, Clone)]
pub struct Tracker {
    config: TrackerConfig,
    swarms: HashMap<InfoHash, Swarm>,
    announces: u64,
    /// Historical `Completed` counts per swarm.
    downloads: HashMap<InfoHash, u64>,
    /// Swarms in creation order; drives the rotating expiry sweep so a
    /// swarm that stops receiving announces still sheds stale members
    /// while the tracker serves *other* swarms.
    order: Vec<InfoHash>,
    /// Next `order` index the sweep visits.
    sweep_cursor: usize,
    /// Start of the current load-accounting window (overload shedding).
    window_start: SimTime,
    /// Announces absorbed in the current window.
    window_count: u64,
    /// Responses that went out with a shedding-scaled interval.
    sheds: u64,
}

impl Tracker {
    /// Creates a tracker.
    pub fn new(config: TrackerConfig) -> Self {
        Tracker {
            config,
            swarms: HashMap::new(),
            announces: 0,
            downloads: HashMap::new(),
            order: Vec::new(),
            sweep_cursor: 0,
            window_start: SimTime::ZERO,
            window_count: 0,
            sheds: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Total announces served.
    pub fn announces(&self) -> u64 {
        self.announces
    }

    /// Responses served with a shedding-scaled interval.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Advances the load window and returns the interval multiplier for
    /// the announce being served: `1` while within capacity (or with
    /// shedding off), else the overload ratio capped at
    /// `shed_max_scale`. Pure arithmetic — no RNG.
    fn shed_scale(&mut self, now: SimTime) -> u64 {
        if now.saturating_since(self.window_start) >= self.config.shed_window {
            self.window_start = now;
            self.window_count = 0;
        }
        self.window_count += 1;
        let cap = self.config.shed_capacity;
        if cap == 0 || self.window_count <= cap {
            return 1;
        }
        self.sheds += 1;
        self.window_count
            .div_ceil(cap)
            .min(u64::from(self.config.shed_max_scale.max(1)))
    }

    /// Current size of a swarm (after expiry at `now`).
    pub fn swarm_size(&mut self, info_hash: InfoHash, now: SimTime) -> usize {
        self.expire(info_hash, now);
        self.swarms.get(&info_hash).map_or(0, |s| s.list.len())
    }

    fn horizon(&self) -> SimDuration {
        self.config
            .announce_interval
            .saturating_mul(self.config.expiry_intervals as u64)
    }

    fn expire(&mut self, info_hash: InfoHash, now: SimTime) {
        let horizon = self.horizon();
        if let Some(swarm) = self.swarms.get_mut(&info_hash) {
            swarm.expire(now, horizon);
        }
    }

    /// Advances the rotating cross-swarm expiry sweep: visits the next
    /// [`SWEEP_PER_ANNOUNCE`] swarms in creation order and expires their
    /// silent members. Idempotent and RNG-free, so it never perturbs
    /// announce responses — it only stops a swarm nobody announces to
    /// from serving arbitrarily stale (mobile) addresses to readers.
    fn sweep(&mut self, now: SimTime) {
        if self.order.is_empty() {
            return;
        }
        let horizon = self.horizon();
        for _ in 0..SWEEP_PER_ANNOUNCE.min(self.order.len()) {
            if self.sweep_cursor >= self.order.len() {
                self.sweep_cursor = 0;
            }
            let ih = self.order[self.sweep_cursor];
            if let Some(swarm) = self.swarms.get_mut(&ih) {
                swarm.expire(now, horizon);
            }
            self.sweep_cursor += 1;
        }
    }

    /// Handles an announce and returns the peer list.
    ///
    /// The requesting peer is never included in its own response. Note that
    /// the tracker keys members by peer-id: a mobile host that re-announces
    /// under a fresh id after a hand-off leaves its stale entry (old id,
    /// unroutable address) in the swarm until expiry — fixed peers keep
    /// receiving, and trying, that dead address.
    pub fn announce(
        &mut self,
        req: &AnnounceRequest,
        now: SimTime,
        rng: &mut SimRng,
    ) -> AnnounceResponse {
        self.announces += 1;
        self.expire(req.info_hash, now);
        self.sweep(now);
        if req.event == AnnounceEvent::Completed {
            *self.downloads.entry(req.info_hash).or_insert(0) += 1;
        }
        let swarm = match self.swarms.entry(req.info_hash) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.order.push(req.info_hash);
                e.insert(Swarm::default())
            }
        };
        match req.event {
            AnnounceEvent::Stopped => {
                if let Some(&idx) = swarm.members.get(&req.peer_id) {
                    swarm.remove_at(idx);
                }
            }
            AnnounceEvent::Started | AnnounceEvent::Completed | AnnounceEvent::Periodic => {
                let seed = req.is_seed || req.event == AnnounceEvent::Completed;
                let entry = TrackedPeer {
                    addr: req.addr,
                    last_seen: now,
                    seed,
                };
                match swarm.members.get(&req.peer_id) {
                    Some(&idx) => {
                        let p = &mut swarm.list[idx as usize].1;
                        match (p.seed, seed) {
                            (false, true) => swarm.seeds += 1,
                            (true, false) => swarm.seeds -= 1,
                            _ => {}
                        }
                        *p = entry;
                    }
                    None => {
                        let idx = u32::try_from(swarm.list.len()).expect("swarm fits in u32");
                        swarm.members.insert(req.peer_id, idx);
                        swarm.list.push((req.peer_id, entry));
                        swarm.seeds += usize::from(seed);
                    }
                }
                swarm.expiry.push_back((now, req.peer_id));
            }
        }
        let cap = self.config.max_peers_returned;
        let requester = swarm.members.get(&req.peer_id).copied();
        let others_count = swarm.list.len() - usize::from(requester.is_some());
        let others: Vec<(PeerId, SimAddr)> = if others_count <= cap {
            // Small swarm: return everyone else, in random order (sort
            // first so the shuffle sees a reproducible arrangement).
            let mut all: Vec<(PeerId, SimAddr)> = swarm
                .list
                .iter()
                .filter(|(id, _)| *id != req.peer_id)
                .map(|(id, p)| (*id, p.addr))
                .collect();
            all.sort_by_key(|(id, _)| *id);
            rng.shuffle(&mut all);
            all
        } else {
            // Large swarm: rejection-sample `cap` distinct members
            // instead of shuffling the whole population — O(cap), not
            // O(n log n), which is what lets a 65k swarm announce fast.
            let n = swarm.list.len();
            let mut chosen: Vec<u32> = Vec::with_capacity(cap);
            while chosen.len() < cap {
                let idx = rng.range(0..n) as u32;
                if requester == Some(idx) || chosen.contains(&idx) {
                    continue;
                }
                chosen.push(idx);
            }
            chosen
                .into_iter()
                .map(|i| {
                    let (id, p) = swarm.list[i as usize];
                    (id, p.addr)
                })
                .collect()
        };
        let complete = swarm.seeds;
        let incomplete = swarm.list.len() - complete;
        let base = self.config.announce_interval;
        let interval = if self.config.interval_jitter == 0.0 {
            base // no RNG draw: keeps jitterless streams untouched
        } else {
            SimDuration::from_secs_f64(
                rng.jitter(base.as_secs_f64(), self.config.interval_jitter),
            )
        };
        // Overload shedding: past capacity the response stretches both
        // pacing knobs, so the crowd thins its own announce rate.
        let scale = self.shed_scale(now);
        AnnounceResponse {
            interval: interval.saturating_mul(scale),
            min_interval: self.config.min_interval.saturating_mul(scale),
            peers: others,
            complete,
            incomplete,
        }
    }
}

impl AnnounceResponse {
    /// Encodes the response in the tracker HTTP wire format: a bencoded
    /// dictionary with BEP 23 *compact* peers (6 bytes per peer: 4-byte
    /// address + 2-byte port; the simulator uses a fixed port of 6881).
    /// The `min interval` key is written only when specified (non-zero),
    /// matching its optionality in real tracker responses.
    pub fn to_bencode(&self) -> crate::bencode::Value {
        use crate::bencode::Value;
        use std::collections::BTreeMap;
        let mut peers = Vec::with_capacity(self.peers.len() * 6);
        for &(_, addr) in &self.peers {
            peers.extend_from_slice(&addr.0.to_be_bytes());
            peers.extend_from_slice(&6881u16.to_be_bytes());
        }
        let mut d = BTreeMap::new();
        d.insert(b"complete".to_vec(), Value::Int(self.complete as i64));
        d.insert(b"incomplete".to_vec(), Value::Int(self.incomplete as i64));
        d.insert(
            b"interval".to_vec(),
            Value::Int(self.interval.as_secs_f64() as i64),
        );
        if !self.min_interval.is_zero() {
            d.insert(
                b"min interval".to_vec(),
                Value::Int(self.min_interval.as_secs_f64() as i64),
            );
        }
        d.insert(b"peers".to_vec(), Value::Bytes(peers));
        Value::Dict(d)
    }

    /// Decodes a compact tracker response produced by
    /// [`AnnounceResponse::to_bencode`] (peer-ids are not carried by the
    /// compact format and come back as zeroed placeholders, exactly as
    /// with real BEP 23 trackers).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the dictionary is malformed.
    pub fn from_bencode(v: &crate::bencode::Value) -> Result<AnnounceResponse, String> {
        use crate::bencode::Value;
        let int = |key: &str| -> Result<i64, String> {
            v.get(key)
                .and_then(Value::as_int)
                .ok_or_else(|| format!("missing integer `{key}`"))
        };
        let interval = int("interval")?;
        if interval < 0 {
            return Err("negative interval".into());
        }
        let min_interval = match v.get("min interval").and_then(Value::as_int) {
            Some(s) if s < 0 => return Err("negative min interval".into()),
            Some(s) => SimDuration::from_secs(s as u64),
            None => SimDuration::ZERO,
        };
        let raw = v
            .get("peers")
            .and_then(Value::as_bytes)
            .ok_or("missing `peers`")?;
        if raw.len() % 6 != 0 {
            return Err("compact peers not a multiple of 6 bytes".into());
        }
        let peers = raw
            .chunks_exact(6)
            .map(|c| {
                let addr = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
                (PeerId([0; 20]), SimAddr(addr))
            })
            .collect();
        Ok(AnnounceResponse {
            interval: SimDuration::from_secs(interval as u64),
            min_interval,
            peers,
            complete: int("complete")?.max(0) as usize,
            incomplete: int("incomplete")?.max(0) as usize,
        })
    }
}

impl Tracker {
    /// Answers a scrape request: aggregate counts for one swarm.
    pub fn scrape(&mut self, info_hash: InfoHash, now: SimTime) -> ScrapeStats {
        self.expire(info_hash, now);
        let (complete, incomplete) = self
            .swarms
            .get(&info_hash)
            .map(|s| (s.seeds, s.list.len() - s.seeds))
            .unwrap_or((0, 0));
        ScrapeStats {
            complete,
            incomplete,
            downloaded: self.downloads.get(&info_hash).copied().unwrap_or(0),
        }
    }
}

/// Deterministic shard index for an info-hash: an FNV-1a fold of the 20
/// hash bytes, finished with a splitmix64-style avalanche (FNV's low
/// bits disperse poorly modulo power-of-two shard counts), reduced
/// modulo the shard count. Pure function of the bytes — stable across
/// runs, thread counts, and snapshot restores.
pub fn shard_of(info_hash: InfoHash, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &info_hash.0 {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h % shards as u64) as usize
}

/// Deterministic *secondary* (replica) shard for an info-hash:
/// an independent second hash (FNV-1a with the alternate 64-bit prime
/// offset basis, same avalanche) reduced modulo `shards − 1` and then
/// skipped past the primary, so the secondary is **guaranteed distinct**
/// from [`shard_of`] whenever the tier has more than one shard. With a
/// single shard there is nowhere else to go and the primary is returned.
pub fn secondary_shard_of(info_hash: InfoHash, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    if shards == 1 {
        return 0;
    }
    let primary = shard_of(info_hash, shards);
    let mut h: u64 = 0x6c62_272e_07bb_0142;
    for &b in &info_hash.0 {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    let slot = (h % (shards as u64 - 1)) as usize;
    if slot >= primary {
        slot + 1
    } else {
        slot
    }
}

/// A tier of tracker shards, each owning a deterministic slice of the
/// info-hash space (see [`shard_of`]). Routing is transparent to
/// callers: the tier exposes the same announce/scrape surface as a
/// single [`Tracker`], plus per-shard load counters and a per-shard
/// outage toggle (a *partial*-service fault — only the swarms the dark
/// shard owns lose their tracker).
#[derive(Debug, Clone)]
pub struct TrackerTier {
    shards: Vec<Tracker>,
    down: Vec<bool>,
}

impl TrackerTier {
    /// Creates a tier of `shards` trackers (at least one), all sharing
    /// one configuration.
    pub fn new(config: TrackerConfig, shards: usize) -> Self {
        let n = shards.max(1);
        TrackerTier {
            shards: (0..n).map(|_| Tracker::new(config)).collect(),
            down: vec![false; n],
        }
    }

    /// Number of shards in the tier.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `info_hash`.
    pub fn shard_for(&self, info_hash: InfoHash) -> usize {
        shard_of(info_hash, self.shards.len())
    }

    /// The replica shard for `info_hash` — distinct from
    /// [`TrackerTier::shard_for`] whenever the tier has more than one
    /// shard (see [`secondary_shard_of`]).
    pub fn secondary_shard_for(&self, info_hash: InfoHash) -> usize {
        secondary_shard_of(info_hash, self.shards.len())
    }

    /// Failover routing: the shard an announce for `info_hash` should
    /// land on. The primary while it is up; with `replicas` enabled, the
    /// secondary while the primary is dark; `None` when every eligible
    /// shard is down (the announce fails and the client backs off).
    pub fn route_for(&self, info_hash: InfoHash, replicas: bool) -> Option<usize> {
        let primary = self.shard_for(info_hash);
        if !self.down[primary] {
            return Some(primary);
        }
        if replicas {
            let secondary = self.secondary_shard_for(info_hash);
            if !self.down[secondary] {
                return Some(secondary);
            }
        }
        None
    }

    /// The configuration in use (shared by every shard).
    pub fn config(&self) -> &TrackerConfig {
        self.shards[0].config()
    }

    /// Routes an announce to the owning shard. Callers model shard
    /// outages *before* announcing (see [`TrackerTier::is_down_for`]);
    /// the tier itself always answers.
    pub fn announce(
        &mut self,
        req: &AnnounceRequest,
        now: SimTime,
        rng: &mut SimRng,
    ) -> AnnounceResponse {
        let s = self.shard_for(req.info_hash);
        self.shards[s].announce(req, now, rng)
    }

    /// An announce routed to an explicit shard — the failover path, where
    /// the caller picked the shard via [`TrackerTier::route_for`].
    pub fn announce_on(
        &mut self,
        shard: usize,
        req: &AnnounceRequest,
        now: SimTime,
        rng: &mut SimRng,
    ) -> AnnounceResponse {
        self.shards[shard].announce(req, now, rng)
    }

    /// Shed responses served by one shard (overload-shedding telemetry).
    pub fn shard_sheds(&self, shard: usize) -> u64 {
        self.shards[shard].sheds()
    }

    /// Current size of a swarm (after expiry at `now`).
    pub fn swarm_size(&mut self, info_hash: InfoHash, now: SimTime) -> usize {
        let s = self.shard_for(info_hash);
        self.shards[s].swarm_size(info_hash, now)
    }

    /// Scrape, routed to the owning shard.
    pub fn scrape(&mut self, info_hash: InfoHash, now: SimTime) -> ScrapeStats {
        let s = self.shard_for(info_hash);
        self.shards[s].scrape(info_hash, now)
    }

    /// Total announces served across all shards.
    pub fn announces(&self) -> u64 {
        self.shards.iter().map(Tracker::announces).sum()
    }

    /// Announces served by one shard (its load series sample).
    pub fn shard_announces(&self, shard: usize) -> u64 {
        self.shards[shard].announces()
    }

    /// Marks one shard up or down. While down, the worlds drop announces
    /// routed to it (partial-service fault).
    pub fn set_shard_down(&mut self, shard: usize, down: bool) {
        self.down[shard] = down;
    }

    /// Whether a specific shard is down.
    pub fn shard_is_down(&self, shard: usize) -> bool {
        self.down[shard]
    }

    /// Whether the shard owning `info_hash` is down.
    pub fn is_down_for(&self, info_hash: InfoHash) -> bool {
        self.down[self.shard_for(info_hash)]
    }
}

use simnet::snapshot::{snap_hash_map, unsnap_hash_map, Snap, SnapReader, SnapWriter};

impl Snap for TrackerConfig {
    fn snap(&self, w: &mut SnapWriter) {
        self.announce_interval.snap(w);
        self.min_interval.snap(w);
        w.put_usize(self.max_peers_returned);
        w.put_u32(self.expiry_intervals);
        w.put_f64(self.interval_jitter);
        w.put_u64(self.shed_capacity);
        self.shed_window.snap(w);
        w.put_u32(self.shed_max_scale);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        TrackerConfig {
            announce_interval: Snap::unsnap(r),
            min_interval: Snap::unsnap(r),
            max_peers_returned: r.get_usize(),
            expiry_intervals: r.get_u32(),
            interval_jitter: r.get_f64(),
            shed_capacity: r.get_u64(),
            shed_window: Snap::unsnap(r),
            shed_max_scale: r.get_u32(),
        }
    }
}

impl Snap for AnnounceEvent {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            AnnounceEvent::Started => 0,
            AnnounceEvent::Stopped => 1,
            AnnounceEvent::Completed => 2,
            AnnounceEvent::Periodic => 3,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        match r.get_u8() {
            0 => AnnounceEvent::Started,
            1 => AnnounceEvent::Stopped,
            2 => AnnounceEvent::Completed,
            3 => AnnounceEvent::Periodic,
            t => panic!("unknown AnnounceEvent tag {t} in snapshot"),
        }
    }
}

impl Snap for TrackedPeer {
    fn snap(&self, w: &mut SnapWriter) {
        self.addr.snap(w);
        self.last_seen.snap(w);
        w.put_bool(self.seed);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        TrackedPeer {
            addr: Snap::unsnap(r),
            last_seen: Snap::unsnap(r),
            seed: r.get_bool(),
        }
    }
}

impl Snap for Swarm {
    // The dense `list` order is load-bearing (rejection sampling indexes
    // into it), so it rides verbatim; `members` and `seeds` are derived
    // from it on restore.
    fn snap(&self, w: &mut SnapWriter) {
        self.list.snap(w);
        self.expiry.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        let list: Vec<(PeerId, TrackedPeer)> = Snap::unsnap(r);
        let expiry = Snap::unsnap(r);
        let mut members = HashMap::with_capacity(list.len());
        let mut seeds = 0;
        for (i, (id, p)) in list.iter().enumerate() {
            members.insert(*id, i as u32);
            seeds += usize::from(p.seed);
        }
        Swarm {
            members,
            list,
            seeds,
            expiry,
        }
    }
}

impl Snap for Tracker {
    fn snap(&self, w: &mut SnapWriter) {
        self.config.snap(w);
        snap_hash_map(&self.swarms, w);
        w.put_u64(self.announces);
        snap_hash_map(&self.downloads, w);
        self.order.snap(w);
        w.put_usize(self.sweep_cursor);
        self.window_start.snap(w);
        w.put_u64(self.window_count);
        w.put_u64(self.sheds);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        Tracker {
            config: Snap::unsnap(r),
            swarms: unsnap_hash_map(r),
            announces: r.get_u64(),
            downloads: unsnap_hash_map(r),
            order: Snap::unsnap(r),
            sweep_cursor: r.get_usize(),
            window_start: Snap::unsnap(r),
            window_count: r.get_u64(),
            sheds: r.get_u64(),
        }
    }
}

impl Snap for TrackerTier {
    fn snap(&self, w: &mut SnapWriter) {
        self.shards.snap(w);
        self.down.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        TrackerTier {
            shards: Snap::unsnap(r),
            down: Snap::unsnap(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u8) -> Vec<PeerId> {
        (0..n).map(|i| PeerId([i; 20])).collect()
    }

    fn req(ih: InfoHash, id: PeerId, addr: SimAddr, event: AnnounceEvent) -> AnnounceRequest {
        AnnounceRequest {
            info_hash: ih,
            peer_id: id,
            addr,
            event,
            is_seed: false,
        }
    }

    fn seed_req(ih: InfoHash, id: PeerId, addr: SimAddr, event: AnnounceEvent) -> AnnounceRequest {
        AnnounceRequest {
            is_seed: true,
            ..req(ih, id, addr, event)
        }
    }

    #[test]
    fn announce_registers_and_lists_others() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let mut rng = SimRng::new(0);
        let ih = InfoHash([1; 20]);
        let ids = ids(3);
        let t = SimTime::ZERO;
        for (i, id) in ids.iter().enumerate() {
            tr.announce(
                &req(ih, *id, SimAddr(i as u32), AnnounceEvent::Started),
                t,
                &mut rng,
            );
        }
        let resp = tr.announce(
            &req(ih, ids[0], SimAddr(0), AnnounceEvent::Periodic),
            t,
            &mut rng,
        );
        assert_eq!(resp.peers.len(), 2);
        assert!(resp.peers.iter().all(|(id, _)| *id != ids[0]));
        assert_eq!(resp.min_interval, TrackerConfig::default().min_interval);
        assert_eq!(tr.swarm_size(ih, t), 3);
    }

    #[test]
    fn response_is_capped_at_max_peers() {
        let mut tr = Tracker::new(TrackerConfig {
            max_peers_returned: 50,
            ..Default::default()
        });
        let mut rng = SimRng::new(1);
        let ih = InfoHash([2; 20]);
        let t = SimTime::ZERO;
        for i in 0..200u32 {
            let mut id = [0u8; 20];
            id[..4].copy_from_slice(&i.to_be_bytes());
            tr.announce(
                &req(ih, PeerId(id), SimAddr(i), AnnounceEvent::Started),
                t,
                &mut rng,
            );
        }
        let resp = tr.announce(
            &req(ih, PeerId([255; 20]), SimAddr(999), AnnounceEvent::Started),
            t,
            &mut rng,
        );
        assert_eq!(resp.peers.len(), 50);
        assert_eq!(resp.incomplete, 201);
    }

    #[test]
    fn stopped_removes_peer() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let mut rng = SimRng::new(0);
        let ih = InfoHash([3; 20]);
        let id = PeerId([9; 20]);
        let t = SimTime::ZERO;
        tr.announce(&req(ih, id, SimAddr(1), AnnounceEvent::Started), t, &mut rng);
        assert_eq!(tr.swarm_size(ih, t), 1);
        tr.announce(&req(ih, id, SimAddr(1), AnnounceEvent::Stopped), t, &mut rng);
        assert_eq!(tr.swarm_size(ih, t), 0);
    }

    #[test]
    fn silent_peers_expire() {
        let cfg = TrackerConfig {
            announce_interval: SimDuration::from_mins(10),
            expiry_intervals: 2,
            ..Default::default()
        };
        let mut tr = Tracker::new(cfg);
        let mut rng = SimRng::new(0);
        let ih = InfoHash([4; 20]);
        let id = PeerId([1; 20]);
        tr.announce(
            &req(ih, id, SimAddr(1), AnnounceEvent::Started),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(tr.swarm_size(ih, SimTime::from_secs(19 * 60)), 1);
        assert_eq!(
            tr.swarm_size(ih, SimTime::from_secs(21 * 60)),
            0,
            "expired after 2 intervals"
        );
    }

    #[test]
    fn sweep_expires_swarms_nobody_announces_to() {
        // The cross-swarm staleness fix: a swarm whose members all go
        // silent is still cleaned up by announces to *other* swarms, so
        // a reader never sees arbitrarily stale mobile addresses.
        let cfg = TrackerConfig {
            announce_interval: SimDuration::from_mins(10),
            expiry_intervals: 2,
            ..Default::default()
        };
        let mut tr = Tracker::new(cfg);
        let mut rng = SimRng::new(0);
        let quiet = InfoHash([1; 20]);
        let busy = InfoHash([2; 20]);
        tr.announce(
            &req(quiet, PeerId([1; 20]), SimAddr(1), AnnounceEvent::Started),
            SimTime::ZERO,
            &mut rng,
        );
        tr.announce(
            &req(busy, PeerId([2; 20]), SimAddr(2), AnnounceEvent::Started),
            SimTime::ZERO,
            &mut rng,
        );
        // Announce only to `busy`, well past `quiet`'s horizon. The
        // rotating sweep visits `quiet` as a side effect.
        let late = SimTime::from_secs(30 * 60);
        tr.announce(
            &req(busy, PeerId([2; 20]), SimAddr(2), AnnounceEvent::Periodic),
            late,
            &mut rng,
        );
        let quiet_swarm = tr.swarms.get(&quiet).expect("swarm map entry persists");
        assert!(
            quiet_swarm.list.is_empty(),
            "sweep dropped the silent member without an announce to its swarm"
        );
    }

    #[test]
    fn handoff_leaves_stale_entry_under_old_id() {
        // The paper's server-mobility pathology: after an address change
        // with a regenerated peer-id, the dead address lingers.
        let mut tr = Tracker::new(TrackerConfig::default());
        let mut rng = SimRng::new(0);
        let ih = InfoHash([5; 20]);
        let old = PeerId([1; 20]);
        let new = PeerId([2; 20]);
        let t = SimTime::ZERO;
        tr.announce(&req(ih, old, SimAddr(10), AnnounceEvent::Started), t, &mut rng);
        // Hand-off: same host, new id + addr.
        tr.announce(&req(ih, new, SimAddr(20), AnnounceEvent::Started), t, &mut rng);
        assert_eq!(tr.swarm_size(ih, t), 2, "stale entry remains");
        // With identity retention (same id), the entry is replaced instead.
        tr.announce(&req(ih, old, SimAddr(30), AnnounceEvent::Started), t, &mut rng);
        let resp = tr.announce(&req(ih, new, SimAddr(20), AnnounceEvent::Periodic), t, &mut rng);
        let addr_of_old = resp.peers.iter().find(|(id, _)| *id == old).unwrap().1;
        assert_eq!(addr_of_old, SimAddr(30), "address updated in place");
    }

    #[test]
    fn scrape_reports_aggregates() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let mut rng = SimRng::new(0);
        let ih = InfoHash([9; 20]);
        let t = SimTime::ZERO;
        tr.announce(
            &seed_req(ih, PeerId([1; 20]), SimAddr(1), AnnounceEvent::Started),
            t,
            &mut rng,
        );
        tr.announce(
            &req(ih, PeerId([2; 20]), SimAddr(2), AnnounceEvent::Started),
            t,
            &mut rng,
        );
        tr.announce(
            &req(ih, PeerId([2; 20]), SimAddr(2), AnnounceEvent::Completed),
            t,
            &mut rng,
        );
        let s = tr.scrape(ih, t);
        assert_eq!(s.complete, 2);
        assert_eq!(s.incomplete, 0);
        assert_eq!(s.downloaded, 1);
        // Unknown swarm scrapes clean.
        assert_eq!(tr.scrape(InfoHash([0; 20]), t), ScrapeStats::default());
    }

    #[test]
    fn announce_response_wire_roundtrip() {
        let resp = AnnounceResponse {
            interval: SimDuration::from_mins(15),
            min_interval: SimDuration::from_secs(60),
            peers: vec![
                (PeerId([1; 20]), SimAddr(0x0A00_0001)),
                (PeerId([2; 20]), SimAddr(0x0A00_0002)),
            ],
            complete: 3,
            incomplete: 7,
        };
        let wire = resp.to_bencode().encode();
        // Spot-check the raw bencode shape.
        assert!(wire.starts_with(b"d8:completei3e"));
        let back =
            AnnounceResponse::from_bencode(&crate::bencode::Value::decode(&wire).unwrap()).unwrap();
        assert_eq!(back.interval, resp.interval);
        assert_eq!(back.min_interval, resp.min_interval);
        assert_eq!(back.complete, 3);
        assert_eq!(back.incomplete, 7);
        // Compact format keeps addresses, not peer-ids.
        let addrs: Vec<SimAddr> = back.peers.iter().map(|&(_, a)| a).collect();
        assert_eq!(addrs, vec![SimAddr(0x0A00_0001), SimAddr(0x0A00_0002)]);
    }

    #[test]
    fn min_interval_key_is_optional_on_the_wire() {
        // ZERO means "unspecified": the key is omitted on encode and
        // defaults back to ZERO on decode.
        let resp = AnnounceResponse {
            interval: SimDuration::from_mins(15),
            min_interval: SimDuration::ZERO,
            peers: Vec::new(),
            complete: 0,
            incomplete: 0,
        };
        let wire = resp.to_bencode().encode();
        assert!(!wire.windows(12).any(|w| w == b"min interval"));
        let back =
            AnnounceResponse::from_bencode(&crate::bencode::Value::decode(&wire).unwrap()).unwrap();
        assert_eq!(back.min_interval, SimDuration::ZERO);
    }

    #[test]
    fn announce_response_decode_rejects_malformed() {
        use crate::bencode::Value;
        let empty = Value::Dict(Default::default());
        assert!(AnnounceResponse::from_bencode(&empty).is_err());
        // Peers not a multiple of 6.
        let mut d = std::collections::BTreeMap::new();
        d.insert(b"complete".to_vec(), Value::Int(0));
        d.insert(b"incomplete".to_vec(), Value::Int(0));
        d.insert(b"interval".to_vec(), Value::Int(900));
        d.insert(b"peers".to_vec(), Value::Bytes(vec![1, 2, 3]));
        assert!(AnnounceResponse::from_bencode(&Value::Dict(d)).is_err());
        // Negative min interval.
        let mut d = std::collections::BTreeMap::new();
        d.insert(b"complete".to_vec(), Value::Int(0));
        d.insert(b"incomplete".to_vec(), Value::Int(0));
        d.insert(b"interval".to_vec(), Value::Int(900));
        d.insert(b"min interval".to_vec(), Value::Int(-5));
        d.insert(b"peers".to_vec(), Value::Bytes(vec![]));
        assert!(AnnounceResponse::from_bencode(&Value::Dict(d)).is_err());
    }

    #[test]
    fn seed_counting() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let mut rng = SimRng::new(0);
        let ih = InfoHash([6; 20]);
        let t = SimTime::ZERO;
        tr.announce(
            &seed_req(ih, PeerId([1; 20]), SimAddr(1), AnnounceEvent::Started),
            t,
            &mut rng,
        );
        let resp = tr.announce(
            &req(ih, PeerId([2; 20]), SimAddr(2), AnnounceEvent::Completed),
            t,
            &mut rng,
        );
        assert_eq!(resp.complete, 2);
        assert_eq!(resp.incomplete, 0);
    }

    #[test]
    fn interval_jitter_spreads_reannounces_deterministically() {
        let jittered = |seed: u64| -> Vec<u64> {
            let mut tr = Tracker::new(TrackerConfig {
                interval_jitter: 0.2,
                ..TrackerConfig::default()
            });
            let mut rng = SimRng::new(seed);
            let ih = InfoHash([7; 20]);
            (0..8u8)
                .map(|i| {
                    tr.announce(
                        &req(
                            ih,
                            PeerId([i + 1; 20]),
                            SimAddr(u32::from(i) + 1),
                            AnnounceEvent::Started,
                        ),
                        SimTime::ZERO,
                        &mut rng,
                    )
                    .interval
                    .as_micros()
                })
                .collect()
        };
        let a = jittered(5);
        assert_eq!(a, jittered(5), "same seed, same jittered intervals");
        let base = TrackerConfig::default().announce_interval;
        let lo = base.mul_f64(0.8).as_micros();
        let hi = base.mul_f64(1.2).as_micros();
        assert!(a.iter().all(|&us| us >= lo && us <= hi));
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "jitter must actually vary the interval"
        );
        // Zero jitter keeps the fixed interval and draws nothing.
        let mut tr = Tracker::new(TrackerConfig::default());
        let mut rng = SimRng::new(5);
        let resp = tr.announce(
            &req(
                InfoHash([7; 20]),
                PeerId([1; 20]),
                SimAddr(1),
                AnnounceEvent::Started,
            ),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(resp.interval, base);
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        // Property test: the shard function is a pure function of the
        // hash bytes (same input → same shard, always in range), and a
        // pseudo-random population spreads across every shard.
        for shards in [1usize, 2, 4, 7, 16] {
            let mut hit = vec![0usize; shards];
            for i in 0..512u32 {
                let mut bytes = [0u8; 20];
                bytes[..4].copy_from_slice(&i.to_be_bytes());
                bytes[10] = (i * 37) as u8;
                let ih = InfoHash(bytes);
                let s = shard_of(ih, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(ih, shards), "routing must be stable");
                hit[s] += 1;
            }
            assert!(
                hit.iter().all(|&c| c > 0),
                "512 hashes must touch every one of {shards} shards: {hit:?}"
            );
        }
    }

    #[test]
    fn tier_routes_and_isolates_shards() {
        let mut tier = TrackerTier::new(TrackerConfig::default(), 4);
        let mut rng = SimRng::new(3);
        let t = SimTime::ZERO;
        // Register 32 single-peer swarms; each lands on exactly one shard.
        let mut hashes = Vec::new();
        for i in 0..32u8 {
            let ih = InfoHash([i; 20]);
            hashes.push(ih);
            tier.announce(
                &req(ih, PeerId([i; 20]), SimAddr(u32::from(i)), AnnounceEvent::Started),
                t,
                &mut rng,
            );
        }
        let per_shard: u64 = (0..4).map(|s| tier.shard_announces(s)).sum();
        assert_eq!(per_shard, 32, "every announce lands on exactly one shard");
        assert_eq!(tier.announces(), 32);
        for &ih in &hashes {
            assert_eq!(tier.swarm_size(ih, t), 1);
            assert_eq!(
                tier.shard_for(ih),
                shard_of(ih, 4),
                "tier routing matches the pure shard function"
            );
        }
        // A single shard outage dims only the hashes it owns.
        tier.set_shard_down(2, true);
        for &ih in &hashes {
            assert_eq!(tier.is_down_for(ih), tier.shard_for(ih) == 2);
        }
        tier.set_shard_down(2, false);
        assert!(hashes.iter().all(|&ih| !tier.is_down_for(ih)));
    }

    #[test]
    fn secondary_shard_differs_for_every_hash() {
        for shards in [2usize, 3, 4, 7, 16] {
            let mut secondary_hit = vec![0usize; shards];
            for i in 0..512u32 {
                let mut bytes = [0u8; 20];
                bytes[..4].copy_from_slice(&i.to_be_bytes());
                bytes[7] = (i * 131) as u8;
                let ih = InfoHash(bytes);
                let p = shard_of(ih, shards);
                let s = secondary_shard_of(ih, shards);
                assert!(s < shards);
                assert_ne!(p, s, "replica must live on a different shard");
                assert_eq!(s, secondary_shard_of(ih, shards), "routing must be stable");
                secondary_hit[s] += 1;
            }
            assert!(
                secondary_hit.iter().all(|&c| c > 0),
                "512 hashes must place replicas on every one of {shards} shards: \
                 {secondary_hit:?}"
            );
        }
        // A single shard has nowhere else to go.
        assert_eq!(secondary_shard_of(InfoHash([9; 20]), 1), 0);
    }

    #[test]
    fn failover_routes_to_secondary_and_returns_after_recovery() {
        let mut tier = TrackerTier::new(TrackerConfig::default(), 4);
        let mut rng = SimRng::new(41);
        let ih = InfoHash([13; 20]);
        let primary = tier.shard_for(ih);
        let secondary = tier.secondary_shard_for(ih);
        assert_ne!(primary, secondary);
        let announce_routed = |tier: &mut TrackerTier, rng: &mut SimRng, at: u64| {
            let shard = tier.route_for(ih, true).expect("a shard is up");
            tier.announce_on(
                shard,
                &req(ih, PeerId([1; 20]), SimAddr(1), AnnounceEvent::Periodic),
                SimTime::from_secs(at),
                rng,
            );
            shard
        };
        // Healthy tier: everything lands on the primary.
        for at in 0..3 {
            assert_eq!(announce_routed(&mut tier, &mut rng, at), primary);
        }
        assert_eq!(tier.shard_announces(primary), 3);
        assert_eq!(tier.shard_announces(secondary), 0);
        // Primary dark: failover announces land on the secondary.
        tier.set_shard_down(primary, true);
        for at in 3..6 {
            assert_eq!(announce_routed(&mut tier, &mut rng, at), secondary);
        }
        assert_eq!(tier.shard_announces(primary), 3, "dark primary takes nothing");
        assert_eq!(tier.shard_announces(secondary), 3);
        // Without replicas enabled the same outage is a dead end.
        assert_eq!(tier.route_for(ih, false), None);
        // Both replicas dark: nowhere to go even with failover.
        tier.set_shard_down(secondary, true);
        assert_eq!(tier.route_for(ih, true), None);
        // Recovery: traffic returns to the primary.
        tier.set_shard_down(primary, false);
        tier.set_shard_down(secondary, false);
        for at in 6..9 {
            assert_eq!(announce_routed(&mut tier, &mut rng, at), primary);
        }
        assert_eq!(tier.shard_announces(primary), 6);
        assert_eq!(tier.shard_announces(secondary), 3);
    }

    #[test]
    fn overload_shedding_scales_pacing_and_recovers() {
        let cfg = TrackerConfig {
            shed_capacity: 2,
            shed_window: SimDuration::from_secs(60),
            shed_max_scale: 4,
            ..TrackerConfig::default()
        };
        let base = cfg.announce_interval;
        let floor = cfg.min_interval;
        let mut tr = Tracker::new(cfg);
        let mut rng = SimRng::new(6);
        let ih = InfoHash([3; 20]);
        let mut announce = |tr: &mut Tracker, i: u8, at: u64| {
            tr.announce(
                &req(
                    ih,
                    PeerId([i; 20]),
                    SimAddr(u32::from(i)),
                    AnnounceEvent::Started,
                ),
                SimTime::from_secs(at),
                &mut rng,
            )
        };
        // Within capacity: untouched pacing.
        assert_eq!(announce(&mut tr, 1, 0).interval, base);
        assert_eq!(announce(&mut tr, 2, 1).interval, base);
        assert_eq!(tr.sheds(), 0);
        // Past capacity: both knobs stretch by the overload ratio.
        let shed = announce(&mut tr, 3, 2);
        assert_eq!(shed.interval, base.saturating_mul(2));
        assert_eq!(shed.min_interval, floor.saturating_mul(2));
        assert_eq!(tr.sheds(), 1);
        // The multiplier is capped at shed_max_scale.
        for i in 4..32u8 {
            announce(&mut tr, i, 3);
        }
        let worst = announce(&mut tr, 32, 4);
        assert_eq!(worst.interval, base.saturating_mul(4));
        // A fresh window clears the pressure entirely.
        assert_eq!(announce(&mut tr, 1, 120).interval, base);
    }

    #[test]
    fn shedding_off_by_default_means_untouched_pacing() {
        let mut tr = Tracker::new(TrackerConfig::default());
        let mut rng = SimRng::new(2);
        let ih = InfoHash([8; 20]);
        for i in 0..64u8 {
            let resp = tr.announce(
                &req(
                    ih,
                    PeerId([i; 20]),
                    SimAddr(u32::from(i)),
                    AnnounceEvent::Started,
                ),
                SimTime::ZERO,
                &mut rng,
            );
            assert_eq!(resp.interval, TrackerConfig::default().announce_interval);
            assert_eq!(resp.min_interval, TrackerConfig::default().min_interval);
        }
        assert_eq!(tr.sheds(), 0);
    }

    #[test]
    fn tier_snapshot_roundtrip() {
        use simnet::snapshot::{SnapReader, SnapWriter};
        let mut tier = TrackerTier::new(TrackerConfig::default(), 3);
        let mut rng = SimRng::new(8);
        for i in 0..16u8 {
            tier.announce(
                &req(
                    InfoHash([i; 20]),
                    PeerId([i; 20]),
                    SimAddr(u32::from(i)),
                    AnnounceEvent::Started,
                ),
                SimTime::from_secs(u64::from(i)),
                &mut rng,
            );
        }
        tier.set_shard_down(1, true);
        let mut w = SnapWriter::new(99);
        tier.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes, 99);
        let mut back = TrackerTier::unsnap(&mut r);
        assert_eq!(back.shard_count(), 3);
        assert_eq!(back.announces(), tier.announces());
        assert!(back.shard_is_down(1) && !back.shard_is_down(0));
        for i in 0..16u8 {
            let ih = InfoHash([i; 20]);
            assert_eq!(
                back.swarm_size(ih, SimTime::from_secs(16)),
                tier.swarm_size(ih, SimTime::from_secs(16))
            );
        }
    }
}
