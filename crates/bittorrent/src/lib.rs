//! # bittorrent — a BitTorrent protocol implementation for simulation
//!
//! Every protocol mechanism the wP2P paper's experiments depend on, built
//! from scratch:
//!
//! * [`bencode`] — strict BEP 3 serialization (torrent files, tracker
//!   responses).
//! * [`sha1`] — FIPS 180-1 SHA-1 for piece hashes and info-hashes.
//! * [`metainfo`] — `.torrent` structure, including *synthetic* torrents
//!   of arbitrary size for swarm-scale simulation.
//! * [`peer_id`] — 20-byte peer identities and the regeneration styles
//!   whose interaction with mobility the paper analyses.
//! * [`wire`] — the peer wire protocol: handshake, length-prefixed
//!   messages, a byte-exact codec, and block references.
//! * [`bitfield`] — piece-possession maps.
//! * [`progress`] — piece/block bookkeeping: requests in flight, timeouts,
//!   endgame duplication.
//! * [`picker`] — piece-selection policies (rarest-first default).
//! * [`choker`] — tit-for-tat unchoking with an optimistic slot.
//! * [`lifecycle`] — connection resilience: seeded exponential backoff,
//!   keepalive/snub timeouts, and the per-peer lifecycle state machine.
//! * [`tracker`] — the directory server with 50-peer responses and
//!   staleness-by-expiry.
//! * [`rate`] — rate estimation and token-bucket limiting.
//! * [`client`] — the sans-IO client session tying it all together.
//!
//! The crate is transport-agnostic: the [`client::Client`] emits
//! [`client::Action`]s and consumes events, so it runs identically over the
//! packet-level TCP stack or the fluid flow model in `p2p-simulation`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bencode;
pub mod bitfield;
pub mod choker;
pub mod client;
pub mod lifecycle;
pub mod magnet;
pub mod metainfo;
pub mod peer_id;
pub mod picker;
pub mod progress;
pub mod rate;
pub mod sha1;
pub mod strategy;
pub mod tracker;
pub mod wire;

/// Commonly used types.
pub mod prelude {
    pub use crate::bencode::Value;
    pub use crate::bitfield::Bitfield;
    pub use crate::choker::{ChokeDecision, Choker, ChokerConfig, ConnKey, PeerSnapshot};
    pub use crate::client::{Action, Client, ClientConfig, ClientStats};
    pub use crate::lifecycle::{BackoffPolicy, ConnState, ResilienceConfig};
    pub use crate::magnet::MagnetLink;
    pub use crate::metainfo::{Info, InfoHash, Metainfo};
    pub use crate::peer_id::{PeerId, PeerIdStyle};
    pub use crate::picker::{
        FixedMix, PickContext, PiecePicker, RandomPick, RarestFirst, Sequential,
    };
    pub use crate::progress::{BlockOutcome, TorrentProgress};
    pub use crate::rate::{RateEstimator, TokenBucket};
    pub use crate::sha1::{Digest, Sha1};
    pub use crate::strategy::{
        BitTyrant, ClientStrategy, FreeRider, Honest, HybridMobility, PopulationMix,
        ServicePolicy, StrategyKind, StrategyPeer,
    };
    pub use crate::tracker::{AnnounceEvent, AnnounceResponse, Tracker, TrackerConfig};
    pub use crate::wire::{BlockRef, Message, BLOCK_SIZE};
}
