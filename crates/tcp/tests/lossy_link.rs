//! End-to-end tests: two TCP endpoints across simulated links with real
//! bandwidth, propagation delay, queueing, and random bit errors.

use sim_tcp::prelude::*;
use simnet::event::EventToken;
use simnet::link::{Link, LinkConfig};
use simnet::prelude::{SimRng, Simulator};
use simnet::time::{SimDuration, SimTime};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Side {
    A,
    B,
}

impl Side {
    fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

#[derive(Debug)]
enum Ev {
    Deliver(Side, Segment),
    Timer(Side),
}

struct Net {
    a: Endpoint,
    b: Endpoint,
    /// Link carrying A's transmissions to B.
    ab: Link,
    /// Link carrying B's transmissions to A.
    ba: Link,
    rng: SimRng,
    timer_a: Option<(SimTime, EventToken)>,
    timer_b: Option<(SimTime, EventToken)>,
}

impl Net {
    fn new(link_cfg: LinkConfig, seed: u64) -> Self {
        let mut a = Endpoint::new(TcpConfig::default(), SeqNum(1));
        let mut b = Endpoint::new(TcpConfig::default(), SeqNum(1_000_000));
        b.listen();
        a.connect(SimTime::ZERO);
        Net {
            a,
            b,
            ab: Link::new(link_cfg),
            ba: Link::new(link_cfg),
            rng: SimRng::new(seed),
            timer_a: None,
            timer_b: None,
        }
    }

    fn ep(&mut self, side: Side) -> &mut Endpoint {
        match side {
            Side::A => &mut self.a,
            Side::B => &mut self.b,
        }
    }

    /// Drains a side's segments onto its link and refreshes its timer.
    fn flush(&mut self, sim: &mut Simulator<Ev>, side: Side) {
        let now = sim.now();
        loop {
            let seg = match side {
                Side::A => self.a.poll_segment(now),
                Side::B => self.b.poll_segment(now),
            };
            let Some(seg) = seg else { break };
            let link = match side {
                Side::A => &mut self.ab,
                Side::B => &mut self.ba,
            };
            if let Some(at) = link
                .send(now, seg.wire_bytes(), &mut self.rng)
                .delivered_at()
            {
                sim.schedule_at(at, Ev::Deliver(side.other(), seg));
            }
        }
        self.sync_timer(sim, side);
    }

    fn sync_timer(&mut self, sim: &mut Simulator<Ev>, side: Side) {
        let want = self.ep(side).next_timer_at();
        let slot = match side {
            Side::A => &mut self.timer_a,
            Side::B => &mut self.timer_b,
        };
        match (*slot, want) {
            (Some((t, _)), Some(w)) if t == w => {}
            (prev, want) => {
                if let Some((_, tok)) = prev {
                    sim.cancel(tok);
                }
                *slot = want.map(|w| (w, sim.schedule_at(w, Ev::Timer(side))));
            }
        }
    }
}

/// Runs the connection until `deadline` and returns the driver state.
fn run(mut net: Net, deadline: SimTime) -> Net {
    let mut sim: Simulator<Ev> = Simulator::new();
    net.flush(&mut sim, Side::A);
    net.flush(&mut sim, Side::B);
    // The simulator is moved into a closure-free loop: we need &mut to both
    // sim and net, so drive events manually.
    while let Some(t) = sim.peek_time() {
        if t > deadline {
            break;
        }
        let (now, ev) = sim.next_event().expect("peeked");
        match ev {
            Ev::Deliver(side, seg) => {
                net.ep(side).on_segment(seg, now);
            }
            Ev::Timer(side) => {
                match side {
                    Side::A => net.timer_a = None,
                    Side::B => net.timer_b = None,
                }
                net.ep(side).on_timer(now);
            }
        }
        net.flush(&mut sim, Side::A);
        net.flush(&mut sim, Side::B);
    }
    net
}

fn fast_link() -> LinkConfig {
    LinkConfig {
        bandwidth_bps: 10_000_000,
        prop_delay: SimDuration::from_millis(10),
        queue_packets: 64,
        ber: 0.0,
    }
}

#[test]
fn transfer_completes_over_clean_link() {
    let mut net = Net::new(fast_link(), 1);
    net.a.write(2_000_000);
    let net = run(net, SimTime::from_secs(30));
    assert!(net.b.is_established());
    assert_eq!(net.b.delivered_total(), 2_000_000);
}

#[test]
fn throughput_approaches_link_rate() {
    let mut net = Net::new(fast_link(), 2);
    // 10 Mbit/s for ~8 s ≈ 10 MB; send 5 MB and measure completion time.
    net.a.write(5_000_000);
    let mut sim: Simulator<Ev> = Simulator::new();
    net.flush(&mut sim, Side::A);
    net.flush(&mut sim, Side::B);
    let mut done_at = None;
    while let Some((now, ev)) = sim.next_event() {
        match ev {
            Ev::Deliver(side, seg) => net.ep(side).on_segment(seg, now),
            Ev::Timer(side) => {
                match side {
                    Side::A => net.timer_a = None,
                    Side::B => net.timer_b = None,
                }
                net.ep(side).on_timer(now)
            }
        }
        net.flush(&mut sim, Side::A);
        net.flush(&mut sim, Side::B);
        if net.b.delivered_total() >= 5_000_000 {
            done_at = Some(now);
            break;
        }
    }
    let done_at = done_at.expect("transfer finished");
    let rate = 5_000_000.0 / done_at.as_secs_f64(); // bytes/s
    let line_rate = 10_000_000.0 / 8.0;
    assert!(
        rate > 0.7 * line_rate,
        "achieved {:.0} B/s of {:.0} B/s line rate",
        rate,
        line_rate
    );
}

#[test]
fn transfer_survives_bit_errors() {
    let cfg = LinkConfig {
        ber: 5e-6,
        ..fast_link()
    };
    let mut net = Net::new(cfg, 3);
    net.a.write(1_000_000);
    let net = run(net, SimTime::from_secs(120));
    assert_eq!(
        net.b.delivered_total(),
        1_000_000,
        "reliable delivery despite {} retransmissions",
        net.a.stats().retransmissions
    );
    assert!(
        net.a.stats().retransmissions > 0,
        "a 1 MB transfer at BER 5e-6 should see losses"
    );
}

#[test]
fn bottleneck_queue_causes_fast_retransmits_not_collapse() {
    // Narrow link + small queue: slow start overshoots, drops, recovers.
    let cfg = LinkConfig {
        bandwidth_bps: 2_000_000,
        prop_delay: SimDuration::from_millis(30),
        queue_packets: 10,
        ber: 0.0,
    };
    let mut net = Net::new(cfg, 4);
    net.a.write(3_000_000);
    let net = run(net, SimTime::from_secs(60));
    assert_eq!(net.b.delivered_total(), 3_000_000);
    assert!(
        net.a.congestion().fast_retransmits() > 0,
        "queue overflow should trigger dupack-based recovery"
    );
}

#[test]
fn bidirectional_transfer_completes_both_ways() {
    let mut net = Net::new(fast_link(), 5);
    net.a.write(1_000_000);
    net.b.write(1_000_000);
    let net = run(net, SimTime::from_secs(60));
    assert_eq!(net.a.delivered_total(), 1_000_000);
    assert_eq!(net.b.delivered_total(), 1_000_000);
    // Almost all of A's ACKs piggybacked on its reverse-path data.
    let s = net.a.stats();
    assert!(
        s.piggybacked_acks_sent > s.pure_acks_sent,
        "bi-directional TCP should piggyback: {s:?}"
    );
}

#[test]
fn deterministic_given_seed() {
    let run_once = |seed: u64| {
        let cfg = LinkConfig {
            ber: 1e-5,
            ..fast_link()
        };
        let mut net = Net::new(cfg, seed);
        net.a.write(500_000);
        let net = run(net, SimTime::from_secs(60));
        (
            net.b.delivered_total(),
            net.a.stats().retransmissions,
            net.a.stats().data_segments_sent,
        )
    };
    assert_eq!(run_once(42), run_once(42));
    assert_ne!(run_once(42), run_once(43));
}
