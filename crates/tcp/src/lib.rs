//! # sim-tcp — sans-IO bidirectional TCP for discrete-event simulation
//!
//! A Reno-era TCP implementation whose behaviour matches what the wP2P
//! paper ("On the Impact of Mobile Hosts in Peer-to-Peer Data Networks",
//! ICDCS 2008) measured on Linux circa 2007: slow start, congestion
//! avoidance, fast retransmit/fast recovery, RFC 6298 RTO with backoff,
//! cumulative ACKs with piggybacking on reverse-path data, and the spec
//! rule that duplicate ACKs are always sent as pure (payload-less)
//! segments.
//!
//! The endpoint is **sans-IO**: it owns no sockets, no clocks, and no event
//! loop. The embedder feeds in segments and timer expirations, and drains
//! out segments and delivered byte counts. Payload bytes themselves are
//! *not* carried — segments carry lengths, and the layer above reconstructs
//! message boundaries from in-order delivered counts. Everything relevant
//! to the paper (on-wire segment sizes, loss coupling between data and
//! piggybacked ACKs, DUPACK purity) is preserved exactly.
//!
//! ```
//! use sim_tcp::prelude::*;
//! use simnet::time::SimTime;
//!
//! let now = SimTime::ZERO;
//! let mut client = Endpoint::new(TcpConfig::default(), SeqNum(100));
//! let mut server = Endpoint::new(TcpConfig::default(), SeqNum(900));
//! server.listen();
//! client.connect(now);
//!
//! // Zero-latency wire: exchange until quiet.
//! loop {
//!     let mut moved = false;
//!     while let Some(seg) = client.poll_segment(now) {
//!         server.on_segment(seg, now);
//!         moved = true;
//!     }
//!     while let Some(seg) = server.poll_segment(now) {
//!         client.on_segment(seg, now);
//!         moved = true;
//!     }
//!     if !moved { break; }
//! }
//! assert!(client.is_established() && server.is_established());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cc;
pub mod endpoint;
pub mod reasm;
pub mod rtt;
pub mod segment;
pub mod seq;

/// Commonly used types.
pub mod prelude {
    pub use crate::cc::{AckProgress, Congestion, DupAckAction};
    pub use crate::endpoint::{Endpoint, TcpConfig, TcpState, TcpStats};
    pub use crate::reasm::{DataOutcome, Reassembly};
    pub use crate::rtt::RttEstimator;
    pub use crate::segment::{SegFlags, Segment, HEADER_BYTES};
    pub use crate::seq::SeqNum;
}
