//! Round-trip-time estimation and retransmission timeout (RFC 6298).

use simnet::time::SimDuration;

/// RTT estimator maintaining SRTT/RTTVAR and deriving the RTO.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    /// Consecutive timeouts, for exponential backoff.
    backoff: u32,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO clamp.
    ///
    /// Before the first sample the RTO is `initial` (RFC 6298 recommends
    /// 1 s; Linux of the paper's era used 3 s initial / 200 ms minimum —
    /// we default to the Linux-like values in [`RttEstimator::linux_like`]).
    pub fn new(initial: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(min_rto <= max_rto, "min RTO must not exceed max RTO");
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: initial.clamp(min_rto, max_rto),
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// The estimator used by the simulated endpoints: 1 s initial RTO,
    /// 200 ms minimum (Linux), 60 s maximum.
    pub fn linux_like() -> Self {
        RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        )
    }

    /// Feeds a new RTT measurement (from a never-retransmitted segment,
    /// per Karn's algorithm — the caller enforces that).
    pub fn sample(&mut self, rtt: SimDuration) {
        const G: u64 = 4; // 1/beta = 4
        const H: u64 = 8; // 1/alpha = 8
        // Clock granule: RFC 6298 §2.3 requires RTTVAR never to round down
        // to zero, else a steady link collapses RTO to SRTT and a single
        // queueing blip fires a spurious retransmit.
        const GRANULE: SimDuration = SimDuration::from_micros(1);
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = (rtt / 2).max(GRANULE);
            }
            Some(srtt) => {
                let err = if rtt >= srtt { rtt - srtt } else { srtt - rtt };
                // RTTVAR <- 3/4 RTTVAR + 1/4 |err|
                self.rttvar = (self.rttvar.saturating_mul(G - 1) / G + err / G).max(GRANULE);
                // SRTT <- 7/8 SRTT + 1/8 RTT
                self.srtt = Some(srtt.saturating_mul(H - 1) / H + rtt / H);
            }
        }
        self.backoff = 0;
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + self.rttvar.saturating_mul(4)).clamp(self.min_rto, self.max_rto);
    }

    /// Current retransmission timeout, including any backoff.
    pub fn rto(&self) -> SimDuration {
        let factor = 1u64 << self.backoff.min(12);
        self.rto.saturating_mul(factor).min(self.max_rto)
    }

    /// Smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Doubles the effective RTO after a retransmission timeout.
    pub fn on_timeout(&mut self) {
        self.backoff += 1;
    }

    /// Clears backoff after forward progress.
    pub fn on_progress(&mut self) {
        self.backoff = 0;
    }
}

impl simnet::snapshot::Snap for RttEstimator {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        self.srtt.snap(w);
        self.rttvar.snap(w);
        self.rto.snap(w);
        self.min_rto.snap(w);
        self.max_rto.snap(w);
        w.put_u32(self.backoff);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        RttEstimator {
            srtt: simnet::snapshot::Snap::unsnap(r),
            rttvar: simnet::snapshot::Snap::unsnap(r),
            rto: simnet::snapshot::Snap::unsnap(r),
            min_rto: simnet::snapshot::Snap::unsnap(r),
            max_rto: simnet::snapshot::Snap::unsnap(r),
            backoff: r.get_u32(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initialises() {
        let mut est = RttEstimator::linux_like();
        est.sample(SimDuration::from_millis(100));
        assert_eq!(est.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = SRTT + 4*RTTVAR = 100 + 4*50 = 300 ms.
        assert_eq!(est.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn converges_on_steady_rtt() {
        let mut est = RttEstimator::linux_like();
        for _ in 0..100 {
            est.sample(SimDuration::from_millis(50));
        }
        let srtt = est.srtt().unwrap().as_secs_f64();
        assert!((srtt - 0.050).abs() < 0.001, "srtt={srtt}");
        // Variance decays, so RTO approaches the minimum clamp.
        assert_eq!(est.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn rto_respects_minimum() {
        let mut est = RttEstimator::linux_like();
        for _ in 0..50 {
            est.sample(SimDuration::from_millis(1));
        }
        assert_eq!(est.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_clears() {
        let mut est = RttEstimator::linux_like();
        est.sample(SimDuration::from_millis(100));
        let base = est.rto();
        est.on_timeout();
        assert_eq!(est.rto(), base.saturating_mul(2));
        est.on_timeout();
        assert_eq!(est.rto(), base.saturating_mul(4));
        est.on_progress();
        assert_eq!(est.rto(), base);
    }

    #[test]
    fn backoff_capped_by_max() {
        let mut est = RttEstimator::linux_like();
        est.sample(SimDuration::from_millis(100));
        for _ in 0..20 {
            est.on_timeout();
        }
        assert_eq!(est.rto(), SimDuration::from_secs(60));
    }

    #[test]
    fn initial_rto_without_samples() {
        let est = RttEstimator::linux_like();
        assert_eq!(est.rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn rttvar_never_truncates_to_zero() {
        // Regression: with integer EWMA, a perfectly steady RTT drives
        // rttvar to 0 in a few samples, collapsing RTO to SRTT (visible
        // once min_rto doesn't mask it). RFC 6298 §2.3 mandates a one-
        // granule floor.
        let mut est = RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_micros(1), // min_rto too small to mask the bug
            SimDuration::from_secs(60),
        );
        for _ in 0..100 {
            est.sample(SimDuration::from_millis(50));
        }
        let srtt = est.srtt().unwrap();
        assert!(
            est.rto() > srtt,
            "rto {:?} must stay above srtt {:?} (rttvar floor)",
            est.rto(),
            srtt
        );
        assert!(est.rto() >= srtt + SimDuration::from_micros(4));

        // A zero-RTT first sample must not zero rttvar either.
        let mut est = RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_micros(1),
            SimDuration::from_secs(60),
        );
        est.sample(SimDuration::ZERO);
        assert!(est.rto() >= SimDuration::from_micros(4));
    }
}
