//! Reno congestion control: slow start, congestion avoidance, fast
//! retransmit, fast recovery (RFC 5681), with a `recover` high-water mark
//! so one loss event cuts the window only once.

use crate::seq::SeqNum;

/// How a cumulative ACK advanced the sender's state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AckProgress {
    /// Ordinary forward progress outside recovery.
    Normal,
    /// A partial ACK during fast recovery: the segment now at the head of
    /// the window was also lost and should be retransmitted at once
    /// (NewReno).
    PartialAck,
    /// This ACK completed fast recovery.
    FullRecovery,
}

/// What the sender should do in response to a duplicate ACK.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DupAckAction {
    /// Nothing yet (fewer than three duplicates).
    None,
    /// Third duplicate: retransmit the first unacknowledged segment and
    /// enter fast recovery.
    FastRetransmit,
    /// Additional duplicate while recovering: window inflated; the sender
    /// may transmit new data if the window now permits.
    Inflate,
}

/// Reno congestion-control state for one direction of a connection.
#[derive(Debug, Clone)]
pub struct Congestion {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    dupacks: u32,
    /// While in fast recovery, the `snd.nxt` at the time loss was detected;
    /// recovery ends when the cumulative ACK passes it.
    recover: Option<SeqNum>,
    /// Fractional cwnd accumulator for congestion avoidance.
    avoid_acc: u64,
    /// Counters for instrumentation.
    fast_retransmits: u64,
    timeouts: u64,
}

impl Congestion {
    /// Creates Reno state with an initial window of `init_segs` segments.
    ///
    /// # Panics
    ///
    /// Panics if `mss` or `init_segs` is zero.
    pub fn new(mss: u32, init_segs: u32) -> Self {
        assert!(mss > 0 && init_segs > 0);
        Congestion {
            mss,
            cwnd: mss * init_segs,
            ssthresh: u32::MAX,
            dupacks: 0,
            recover: None,
            avoid_acc: 0,
            fast_retransmits: 0,
            timeouts: 0,
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    /// Whether the sender is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Whether fast recovery is in progress.
    pub fn in_recovery(&self) -> bool {
        self.recover.is_some()
    }

    /// Consecutive duplicate ACKs seen.
    pub fn dupacks(&self) -> u32 {
        self.dupacks
    }

    /// Total fast retransmits triggered.
    pub fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    /// Total retransmission timeouts taken.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Handles a cumulative ACK advancing `snd.una` by `acked` bytes to
    /// `una_after`.
    pub fn on_new_ack(&mut self, acked: u32, una_after: SeqNum) -> AckProgress {
        self.dupacks = 0;
        if let Some(recover) = self.recover {
            if una_after.after_eq(recover) {
                // Full recovery: deflate to ssthresh.
                self.cwnd = self.ssthresh.max(self.mss);
                self.recover = None;
                return AckProgress::FullRecovery;
            }
            // Partial ACK (NewReno, RFC 6582): the next segment after
            // `una_after` was lost too — the caller retransmits it
            // immediately. Deflate by the amount acked, re-inflate by one
            // MSS, stay in recovery.
            self.cwnd = self.cwnd.saturating_sub(acked).max(self.ssthresh / 2) + self.mss;
            return AckProgress::PartialAck;
        }
        if self.in_slow_start() {
            self.cwnd = self.cwnd.saturating_add(acked.min(self.mss));
        } else {
            // Congestion avoidance: cwnd += MSS per cwnd of data acked,
            // tracked with a byte accumulator to avoid integer starvation.
            self.avoid_acc += acked as u64;
            let step = self.cwnd as u64;
            if self.avoid_acc >= step {
                self.avoid_acc -= step;
                self.cwnd = self.cwnd.saturating_add(self.mss);
            }
        }
        AckProgress::Normal
    }

    /// Handles a duplicate ACK; `flight` is the number of unacknowledged
    /// bytes in the network and `snd_nxt` the current send frontier.
    pub fn on_dup_ack(&mut self, flight: u32, snd_nxt: SeqNum) -> DupAckAction {
        if self.in_recovery() {
            self.cwnd = self.cwnd.saturating_add(self.mss);
            return DupAckAction::Inflate;
        }
        self.dupacks += 1;
        if self.dupacks < 3 {
            return DupAckAction::None;
        }
        // Enter fast recovery: ssthresh = flight/2, cwnd = ssthresh + 3 MSS.
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh + 3 * self.mss;
        self.recover = Some(snd_nxt);
        self.fast_retransmits += 1;
        DupAckAction::FastRetransmit
    }

    /// Handles a retransmission timeout with `flight` unacknowledged bytes.
    pub fn on_timeout(&mut self, flight: u32) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.dupacks = 0;
        self.recover = None;
        self.avoid_acc = 0;
        self.timeouts += 1;
    }
}

impl simnet::snapshot::Snap for Congestion {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        w.put_u32(self.mss);
        w.put_u32(self.cwnd);
        w.put_u32(self.ssthresh);
        w.put_u32(self.dupacks);
        self.recover.snap(w);
        w.put_u64(self.avoid_acc);
        w.put_u64(self.fast_retransmits);
        w.put_u64(self.timeouts);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        Congestion {
            mss: r.get_u32(),
            cwnd: r.get_u32(),
            ssthresh: r.get_u32(),
            dupacks: r.get_u32(),
            recover: simnet::snapshot::Snap::unsnap(r),
            avoid_acc: r.get_u64(),
            fast_retransmits: r.get_u64(),
            timeouts: r.get_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    #[test]
    fn slow_start_doubles_per_window() {
        let mut cc = Congestion::new(MSS, 2);
        assert!(cc.in_slow_start());
        // Ack one full initial window in MSS chunks: cwnd should double.
        let start = cc.cwnd();
        let mut acked = SeqNum::ZERO;
        for _ in 0..2 {
            acked = acked.add(MSS);
            cc.on_new_ack(MSS, acked);
        }
        assert_eq!(cc.cwnd(), start + 2 * MSS);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut cc = Congestion::new(MSS, 2);
        cc.on_timeout(10 * MSS); // ssthresh = 5 MSS, cwnd = 1 MSS
                                 // Grow back to ssthresh via slow start.
        let mut una = SeqNum::ZERO;
        while cc.in_slow_start() {
            una = una.add(MSS);
            cc.on_new_ack(MSS, una);
        }
        let at_ca = cc.cwnd();
        // One full window of ACKs in CA adds ~one MSS.
        let acks = at_ca / MSS;
        for _ in 0..acks {
            una = una.add(MSS);
            cc.on_new_ack(MSS, una);
        }
        assert!(
            cc.cwnd() >= at_ca + MSS && cc.cwnd() <= at_ca + 2 * MSS,
            "cwnd grew from {at_ca} to {}",
            cc.cwnd()
        );
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut cc = Congestion::new(MSS, 4);
        let flight = 8 * MSS;
        let nxt = SeqNum(8 * MSS);
        assert_eq!(cc.on_dup_ack(flight, nxt), DupAckAction::None);
        assert_eq!(cc.on_dup_ack(flight, nxt), DupAckAction::None);
        assert_eq!(cc.on_dup_ack(flight, nxt), DupAckAction::FastRetransmit);
        assert!(cc.in_recovery());
        assert_eq!(cc.ssthresh(), 4 * MSS);
        assert_eq!(cc.cwnd(), 4 * MSS + 3 * MSS);
        assert_eq!(cc.fast_retransmits(), 1);
    }

    #[test]
    fn recovery_inflates_then_deflates() {
        let mut cc = Congestion::new(MSS, 4);
        let nxt = SeqNum(8 * MSS);
        for _ in 0..3 {
            cc.on_dup_ack(8 * MSS, nxt);
        }
        let inflated = cc.cwnd();
        assert_eq!(cc.on_dup_ack(8 * MSS, nxt), DupAckAction::Inflate);
        assert_eq!(cc.cwnd(), inflated + MSS);
        // Full ACK past `recover` exits recovery at ssthresh.
        let done = cc.on_new_ack(8 * MSS, SeqNum(8 * MSS));
        assert_eq!(done, AckProgress::FullRecovery);
        assert!(!cc.in_recovery());
        assert_eq!(cc.cwnd(), cc.ssthresh());
    }

    #[test]
    fn no_second_cut_within_recovery() {
        let mut cc = Congestion::new(MSS, 4);
        let nxt = SeqNum(8 * MSS);
        for _ in 0..3 {
            cc.on_dup_ack(8 * MSS, nxt);
        }
        let ssthresh = cc.ssthresh();
        // A later burst of dupacks while recovering must not cut again.
        for _ in 0..5 {
            assert_eq!(cc.on_dup_ack(8 * MSS, nxt), DupAckAction::Inflate);
        }
        assert_eq!(cc.ssthresh(), ssthresh);
        assert_eq!(cc.fast_retransmits(), 1);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = Congestion::new(MSS, 10);
        cc.on_timeout(20 * MSS);
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.ssthresh(), 10 * MSS);
        assert!(cc.in_slow_start());
        assert_eq!(cc.timeouts(), 1);
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut cc = Congestion::new(MSS, 1);
        cc.on_timeout(MSS);
        assert_eq!(cc.ssthresh(), 2 * MSS);
    }
}
