//! The sans-IO TCP endpoint.
//!
//! An [`Endpoint`] is one side of a full-duplex TCP connection, driven
//! entirely by the embedder:
//!
//! * feed it wire input with [`Endpoint::on_segment`],
//! * feed it time with [`Endpoint::on_timer`] (when
//!   [`Endpoint::next_timer_at`] expires),
//! * queue application bytes with [`Endpoint::write`],
//! * drain outgoing segments with [`Endpoint::poll_segment`] and delivered
//!   bytes with [`Endpoint::take_delivered`].
//!
//! The behaviours this paper's experiments rely on are implemented
//! faithfully:
//!
//! * **ACK piggybacking** — every data segment carries the current
//!   cumulative ACK (all segments except the initial SYN have the ACK bit
//!   set), so on a bidirectional connection almost all ACKs ride on data
//!   and inherit its (length-dependent) loss probability.
//! * **Pure DUPACKs** — duplicate ACKs are never piggybacked: an
//!   out-of-order arrival immediately emits a payload-less segment, exactly
//!   the stipulation the paper's §3.2 discusses.
//! * **Reno loss recovery** — three DUPACKs trigger fast retransmit and
//!   fast recovery; silence triggers an exponentially backed-off RTO.

use crate::cc::{AckProgress, Congestion, DupAckAction};
use crate::reasm::Reassembly;
use crate::rtt::RttEstimator;
use crate::segment::{SegFlags, Segment};
use crate::seq::SeqNum;
use metrics::handle::MetricsHandle;
use metrics::recorder::Series;
use metrics::registry::Counter;
use simnet::time::{SimDuration, SimTime};

/// Static endpoint parameters.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Maximum segment (payload) size in bytes.
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd_segs: u32,
    /// Receive window advertised to the peer, in bytes.
    pub recv_window: u32,
    /// RFC 1122 delayed ACKs: acknowledge at most every second full
    /// segment, or when the (simplified, poll-driven) delay expires.
    /// Paper-era Linux enables this; it *increases* the information
    /// carried per ACK, and therefore the cost of losing one.
    pub delayed_ack: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            init_cwnd_segs: 2,
            recv_window: 128 * 1024,
            delayed_ack: false,
        }
    }
}

/// Connection lifecycle state (simplified TCP state machine).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open: waiting for a SYN.
    Listen,
    /// Active open: SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data may flow.
    Established,
    /// We sent a FIN and await its acknowledgement.
    FinWait,
    /// Peer sent a FIN; we may still send.
    CloseWait,
    /// Both FINs exchanged; we are done.
    Closing,
}

/// Counters describing one endpoint's lifetime behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Data segments transmitted (including retransmissions).
    pub data_segments_sent: u64,
    /// Pure (payload-less) ACKs transmitted, duplicates included.
    pub pure_acks_sent: u64,
    /// Data segments carrying a piggybacked ACK (all of them, per spec).
    pub piggybacked_acks_sent: u64,
    /// Duplicate ACKs transmitted (always pure).
    pub dupacks_sent: u64,
    /// Retransmitted data segments.
    pub retransmissions: u64,
    /// Bytes of payload acknowledged by the peer.
    pub bytes_acked: u64,
    /// Segments received (any kind).
    pub segments_received: u64,
}

/// One side of a simulated TCP connection. See the module docs.
#[derive(Debug, Clone)]
pub struct Endpoint {
    config: TcpConfig,
    state: TcpState,

    // --- send side ---
    iss: SeqNum,
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    /// Application bytes queued beyond `snd_nxt`.
    snd_buffered: u64,
    /// Total application bytes ever queued with [`Endpoint::write`].
    written_total: u64,
    cc: Congestion,
    rtt: RttEstimator,
    peer_window: u32,
    /// Outstanding RTT probe: (sequence that must be acked, send time).
    rtt_probe: Option<(SeqNum, SimTime)>,
    /// Deadline of the retransmission timer, if armed.
    rtx_deadline: Option<SimTime>,
    /// A fast-retransmit of `snd_una` is due.
    retransmit_pending: bool,
    fin_queued: bool,
    /// Sequence number consumed by our FIN once sent.
    fin_seq: Option<SeqNum>,
    /// The initial SYN has been emitted at least once.
    syn_emitted: bool,
    /// A handshake segment (SYN or SYN-ACK) must be re-emitted after a
    /// timeout.
    handshake_rtx: bool,

    // --- receive side ---
    reasm: Option<Reassembly>,
    /// A cumulative ACK should be sent.
    ack_pending: bool,
    /// Pure duplicate ACKs owed to the peer.
    dupacks_pending: u32,
    /// Delayed-ACK state: in-order segments received since the last ACK
    /// we sent, and the latest time by which one must go out.
    unacked_segments: u32,
    ack_deadline: Option<SimTime>,
    fin_received: bool,
    /// In-order bytes delivered but not yet taken by the application.
    delivered_unread: u64,
    eof_signalled: bool,

    stats: TcpStats,
    metrics: EndpointMetrics,
}

/// Instruments wired up by [`Endpoint::attach_metrics`]. All default to
/// disabled no-ops; a cloned endpoint shares them with its original.
#[derive(Debug, Clone, Default)]
struct EndpointMetrics {
    cwnd: Series,
    ssthresh: Series,
    srtt: Series,
    retransmits: Counter,
    timeouts: Counter,
    dupacks_sent: Counter,
}

impl Endpoint {
    /// Creates a closed endpoint with the given initial sequence number.
    pub fn new(config: TcpConfig, iss: SeqNum) -> Self {
        Endpoint {
            config,
            state: TcpState::Closed,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_buffered: 0,
            written_total: 0,
            cc: Congestion::new(config.mss, config.init_cwnd_segs),
            rtt: RttEstimator::linux_like(),
            peer_window: config.recv_window,
            rtt_probe: None,
            rtx_deadline: None,
            retransmit_pending: false,
            fin_queued: false,
            fin_seq: None,
            syn_emitted: false,
            handshake_rtx: false,
            reasm: None,
            ack_pending: false,
            dupacks_pending: 0,
            unacked_segments: 0,
            ack_deadline: None,
            fin_received: false,
            delivered_unread: 0,
            eof_signalled: false,
            stats: TcpStats::default(),
            metrics: EndpointMetrics::default(),
        }
    }

    /// Wires this endpoint's congestion/RTT observables into `handle`
    /// under `tcp.<label>.*`: `cwnd`, `ssthresh`, and `srtt_us` series
    /// (recorded on ACK progress), plus `retransmits`, `timeouts`, and
    /// `dupacks_sent` counters. A disabled handle attaches inert
    /// instruments, so this is always safe to call.
    pub fn attach_metrics(&mut self, handle: &MetricsHandle, label: &str) {
        self.metrics = EndpointMetrics {
            cwnd: handle.series(&format!("tcp.{label}.cwnd")),
            ssthresh: handle.series(&format!("tcp.{label}.ssthresh")),
            srtt: handle.series(&format!("tcp.{label}.srtt_us")),
            retransmits: handle.counter(&format!("tcp.{label}.retransmits")),
            timeouts: handle.counter(&format!("tcp.{label}.timeouts")),
            dupacks_sent: handle.counter(&format!("tcp.{label}.dupacks_sent")),
        };
    }

    /// Begins an active open: a SYN will be produced by `poll_segment`.
    ///
    /// # Panics
    ///
    /// Panics unless the endpoint is `Closed`.
    pub fn connect(&mut self, now: SimTime) {
        assert_eq!(self.state, TcpState::Closed, "connect() on open endpoint");
        self.state = TcpState::SynSent;
        self.snd_nxt = self.iss.add(1); // SYN occupies one sequence number
        self.arm_rtx(now);
    }

    /// Begins a passive open: the endpoint waits for a SYN.
    ///
    /// # Panics
    ///
    /// Panics unless the endpoint is `Closed`.
    pub fn listen(&mut self) {
        assert_eq!(self.state, TcpState::Closed, "listen() on open endpoint");
        self.state = TcpState::Listen;
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// True once the three-way handshake has completed.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait
        )
    }

    /// True once the connection is fully closed or aborted.
    pub fn is_closed(&self) -> bool {
        matches!(self.state, TcpState::Closed | TcpState::Closing)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// The congestion-control state (read-only view).
    pub fn congestion(&self) -> &Congestion {
        &self.cc
    }

    /// Smoothed RTT estimate, if measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Unacknowledged bytes in flight.
    pub fn flight_size(&self) -> u32 {
        self.snd_una.distance_to(self.snd_nxt)
    }

    /// Application bytes queued but not yet transmitted.
    pub fn send_backlog(&self) -> u64 {
        self.snd_buffered
    }

    /// Queues `bytes` of application data for transmission.
    pub fn write(&mut self, bytes: u64) {
        debug_assert!(!self.fin_queued, "write after close");
        self.snd_buffered += bytes;
        self.written_total += bytes;
    }

    /// Total application bytes ever queued with [`Endpoint::write`].
    pub fn written_total(&self) -> u64 {
        self.written_total
    }

    /// Half-closes: a FIN will follow the queued data.
    pub fn close(&mut self) {
        self.fin_queued = true;
    }

    /// Aborts the connection locally. The next `poll_segment` yields a RST
    /// if the connection was open.
    pub fn abort(&mut self) -> Option<Segment> {
        let rst = if self.state != TcpState::Closed && self.state != TcpState::Listen {
            Some(Segment {
                seq: self.snd_nxt,
                ack: self.rcv_nxt().unwrap_or(SeqNum::ZERO),
                flags: SegFlags {
                    rst: true,
                    ack: true,
                    ..Default::default()
                },
                payload: 0,
                window: 0,
            })
        } else {
            None
        };
        self.state = TcpState::Closed;
        self.rtx_deadline = None;
        rst
    }

    /// Takes the bytes delivered in order since the last call.
    pub fn take_delivered(&mut self) -> u64 {
        std::mem::take(&mut self.delivered_unread)
    }

    /// Total in-order bytes ever delivered.
    pub fn delivered_total(&self) -> u64 {
        self.reasm.as_ref().map_or(0, |r| r.delivered_total())
    }

    /// Returns `true` exactly once, after the peer's FIN has been delivered
    /// in order.
    pub fn take_eof(&mut self) -> bool {
        if self.fin_received && !self.eof_signalled {
            self.eof_signalled = true;
            true
        } else {
            false
        }
    }

    /// Next expected sequence number from the peer (what we ACK).
    pub fn rcv_nxt(&self) -> Option<SeqNum> {
        self.reasm.as_ref().map(|r| r.rcv_nxt())
    }

    /// Deadline of the earliest pending timer (retransmission or delayed
    /// ACK), if armed. The embedder calls [`Endpoint::on_timer`] when
    /// virtual time reaches it.
    pub fn next_timer_at(&self) -> Option<SimTime> {
        match (self.rtx_deadline, self.ack_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn arm_rtx(&mut self, now: SimTime) {
        self.rtx_deadline = Some(now + self.rtt.rto());
    }

    fn maybe_disarm_rtx(&mut self) {
        let fin_unacked = match self.fin_seq {
            Some(f) => self.snd_una.before_eq(f),
            None => false,
        };
        if self.snd_una == self.snd_nxt && !fin_unacked && self.state != TcpState::SynSent {
            self.rtx_deadline = None;
        }
    }

    /// Effective send window: min(cwnd, peer receive window).
    fn send_window(&self) -> u32 {
        self.cc.cwnd().min(self.peer_window)
    }

    /// Handles timers firing at `now` (retransmission and delayed ACK).
    pub fn on_timer(&mut self, now: SimTime) {
        if let Some(d) = self.ack_deadline {
            if now >= d {
                self.ack_deadline = None;
                self.unacked_segments = 0;
                self.ack_pending = true;
            }
        }
        let Some(deadline) = self.rtx_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        self.rtx_deadline = None;
        match self.state {
            TcpState::SynSent | TcpState::SynRcvd => {
                // Handshake segment lost: re-arm; poll re-emits it because
                // handshake segments are regenerated from state.
                self.rtt.on_timeout();
                self.handshake_rtx = true;
                self.arm_rtx(now);
            }
            TcpState::Established | TcpState::FinWait | TcpState::CloseWait
                if (self.flight_size() > 0 || self.fin_unacked()) =>
            {
                self.rtt.on_timeout();
                self.cc.on_timeout(self.flight_size());
                self.retransmit_pending = true;
                self.rtt_probe = None; // Karn: invalidate the sample
                self.arm_rtx(now);
                self.metrics.timeouts.inc();
            }
            _ => {}
        }
    }

    fn fin_unacked(&self) -> bool {
        match self.fin_seq {
            Some(f) => self.snd_una.before_eq(f),
            None => false,
        }
    }

    /// Processes an incoming segment at `now`.
    pub fn on_segment(&mut self, seg: Segment, now: SimTime) {
        self.stats.segments_received += 1;
        if seg.flags.rst {
            self.state = TcpState::Closed;
            self.rtx_deadline = None;
            return;
        }
        match self.state {
            TcpState::Closed => {}
            TcpState::Listen => {
                if seg.flags.syn {
                    self.reasm = Some(Reassembly::new(seg.seq.add(1)));
                    self.state = TcpState::SynRcvd;
                    self.snd_nxt = self.iss.add(1);
                    self.peer_window = seg.window;
                    self.ack_pending = true; // SYN-ACK emitted from state
                    self.arm_rtx(now);
                }
            }
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.iss.add(1) {
                    self.snd_una = seg.ack;
                    self.reasm = Some(Reassembly::new(seg.seq.add(1)));
                    self.state = TcpState::Established;
                    self.peer_window = seg.window;
                    self.ack_pending = true;
                    self.rtx_deadline = None;
                }
            }
            _ => {
                if seg.flags.syn {
                    // Duplicate SYN in SynRcvd: re-ack it.
                    self.ack_pending = true;
                    return;
                }
                self.process_ack(&seg, now);
                self.process_data(&seg, now);
                if self.state == TcpState::SynRcvd && self.snd_una == self.iss.add(1) {
                    self.state = TcpState::Established;
                }
            }
        }
    }

    fn process_ack(&mut self, seg: &Segment, now: SimTime) {
        if !seg.flags.ack {
            return;
        }
        self.peer_window = seg.window;
        if seg.ack.after(self.snd_una) && seg.ack.before_eq(self.snd_nxt) {
            let acked = self.snd_una.distance_to(seg.ack);
            self.snd_una = seg.ack;
            self.stats.bytes_acked += acked as u64;
            if let Some((probe_seq, sent_at)) = self.rtt_probe {
                if seg.ack.after_eq(probe_seq) {
                    self.rtt.sample(now.saturating_since(sent_at));
                    self.rtt_probe = None;
                    if let Some(srtt) = self.rtt.srtt() {
                        self.metrics.srtt.record(now, srtt.as_micros() as f64);
                    }
                }
            }
            self.rtt.on_progress();
            if self.cc.on_new_ack(acked, self.snd_una) == AckProgress::PartialAck {
                // NewReno: the head of the remaining window was lost too.
                self.retransmit_pending = true;
                self.rtt_probe = None; // Karn
            }
            self.metrics.cwnd.record(now, self.cc.cwnd() as f64);
            self.metrics.ssthresh.record(now, self.cc.ssthresh() as f64);
            // Restart the timer for remaining flight; disarm when idle.
            if self.flight_size() > 0 || self.fin_unacked() {
                self.arm_rtx(now);
            } else {
                self.maybe_disarm_rtx();
            }
            if self.state == TcpState::FinWait && !self.fin_unacked() && self.fin_received {
                self.state = TcpState::Closing;
            }
        } else if seg.ack == self.snd_una
            && self.flight_size() > 0
            && seg.payload == 0
            && !seg.flags.fin
        {
            // A *pure* same-ACK segment is a duplicate ACK. A data segment
            // repeating the ACK number is NOT (the peer may simply have had
            // nothing new to acknowledge) — exactly why the spec forbids
            // piggybacking DUPACKs.
            match self.cc.on_dup_ack(self.flight_size(), self.snd_nxt) {
                DupAckAction::FastRetransmit => {
                    self.retransmit_pending = true;
                    self.rtt_probe = None; // Karn
                }
                DupAckAction::Inflate | DupAckAction::None => {}
            }
        }
    }

    fn process_data(&mut self, seg: &Segment, now: SimTime) {
        if self.reasm.is_none() {
            return;
        }
        if seg.payload > 0 {
            let outcome = self
                .reasm
                .as_mut()
                .expect("checked above")
                .on_data(seg.seq, seg.payload);
            if outcome.delivered > 0 {
                self.delivered_unread += outcome.delivered;
                if self.config.delayed_ack {
                    // RFC 1122: ACK at least every second segment; never
                    // delay longer than the ACK timer (200 ms here).
                    self.unacked_segments += 1;
                    if self.unacked_segments >= 2 {
                        self.unacked_segments = 0;
                        self.ack_deadline = None;
                        self.ack_pending = true;
                    } else if self.ack_deadline.is_none() {
                        self.ack_deadline = Some(now + SimDuration::from_millis(200));
                    }
                } else {
                    self.ack_pending = true;
                }
            }
            if outcome.out_of_order {
                // Immediate pure DUPACK per RFC 5681. Any delayed ACK is
                // superseded.
                self.ack_deadline = None;
                self.unacked_segments = 0;
                self.dupacks_pending += 1;
            }
        }
        if seg.flags.fin {
            let fin_seq = seg.seq.add(seg.payload);
            let reasm = self.reasm.as_mut().expect("reasm exists");
            if fin_seq == reasm.rcv_nxt() && !self.fin_received {
                // FIN is in order: consume its sequence number.
                reasm.on_fin();
                self.fin_received = true;
                self.ack_pending = true;
                self.state = match self.state {
                    TcpState::FinWait if !self.fin_unacked() => TcpState::Closing,
                    TcpState::FinWait => TcpState::FinWait,
                    _ => TcpState::CloseWait,
                };
            } else if !self.fin_received {
                // FIN beyond a hole: dupack.
                self.dupacks_pending += 1;
            }
        }
    }

    /// Produces the next segment to transmit, if any. Call repeatedly until
    /// `None` after every input event.
    pub fn poll_segment(&mut self, now: SimTime) -> Option<Segment> {
        match self.state {
            TcpState::Closed | TcpState::Listen => None,
            TcpState::SynSent => {
                if self.take_handshake_rtx() || !self.syn_emitted {
                    self.syn_emitted = true;
                    Some(Segment {
                        seq: self.iss,
                        ack: SeqNum::ZERO,
                        flags: SegFlags {
                            syn: true,
                            ..Default::default()
                        },
                        payload: 0,
                        window: self.config.recv_window,
                    })
                } else {
                    None
                }
            }
            TcpState::SynRcvd => {
                if self.take_handshake_rtx() || self.ack_pending {
                    self.ack_pending = false;
                    Some(Segment {
                        seq: self.iss,
                        ack: self.rcv_nxt().expect("reasm set in SynRcvd"),
                        flags: SegFlags {
                            syn: true,
                            ack: true,
                            ..Default::default()
                        },
                        payload: 0,
                        window: self.config.recv_window,
                    })
                } else {
                    None
                }
            }
            _ => self.poll_established(now),
        }
    }

    fn take_handshake_rtx(&mut self) -> bool {
        std::mem::take(&mut self.handshake_rtx)
    }

    fn poll_established(&mut self, now: SimTime) -> Option<Segment> {
        let rcv_nxt = self.rcv_nxt().expect("established implies reasm");

        // 1. Duplicate ACKs: always pure, highest priority (they are
        //    generated by arrivals that already happened).
        if self.dupacks_pending > 0 {
            self.dupacks_pending -= 1;
            self.stats.pure_acks_sent += 1;
            self.stats.dupacks_sent += 1;
            self.metrics.dupacks_sent.inc();
            return Some(self.pure_ack(rcv_nxt));
        }

        // 2. Loss recovery retransmission from snd_una.
        if self.retransmit_pending {
            self.retransmit_pending = false;
            let outstanding = self.flight_size();
            if outstanding > 0 {
                let len = outstanding.min(self.config.mss);
                self.stats.data_segments_sent += 1;
                self.stats.retransmissions += 1;
                self.stats.piggybacked_acks_sent += 1;
                self.metrics.retransmits.inc();
                self.ack_pending = false;
                if self.rtx_deadline.is_none() {
                    self.arm_rtx(now);
                }
                return Some(Segment {
                    seq: self.snd_una,
                    ack: rcv_nxt,
                    flags: SegFlags {
                        ack: true,
                        ..Default::default()
                    },
                    payload: len,
                    window: self.config.recv_window,
                });
            }
        }

        // 3. New data inside the window (ACK piggybacks automatically).
        if self.snd_buffered > 0 && self.state != TcpState::FinWait {
            let window = self.send_window();
            let in_flight = self.flight_size();
            if in_flight < window {
                let room = (window - in_flight) as u64;
                let len = room.min(self.snd_buffered).min(self.config.mss as u64) as u32;
                if len > 0 {
                    let seq = self.snd_nxt;
                    self.snd_nxt = self.snd_nxt.add(len);
                    self.snd_buffered -= len as u64;
                    if self.rtt_probe.is_none() {
                        self.rtt_probe = Some((self.snd_nxt, now));
                    }
                    if self.rtx_deadline.is_none() {
                        self.arm_rtx(now);
                    }
                    self.stats.data_segments_sent += 1;
                    self.stats.piggybacked_acks_sent += 1;
                    self.ack_pending = false;
                    self.unacked_segments = 0;
                    self.ack_deadline = None;
                    return Some(Segment {
                        seq,
                        ack: rcv_nxt,
                        flags: SegFlags {
                            ack: true,
                            ..Default::default()
                        },
                        payload: len,
                        window: self.config.recv_window,
                    });
                }
            }
        }

        // 4. FIN once all data is out.
        if self.fin_queued && self.fin_seq.is_none() && self.snd_buffered == 0 {
            let seq = self.snd_nxt;
            self.fin_seq = Some(seq);
            self.snd_nxt = self.snd_nxt.add(1);
            self.state = match self.state {
                TcpState::CloseWait => TcpState::FinWait, // both directions closing
                _ => TcpState::FinWait,
            };
            if self.rtx_deadline.is_none() {
                self.arm_rtx(now);
            }
            self.ack_pending = false;
            return Some(Segment {
                seq,
                ack: rcv_nxt,
                flags: SegFlags {
                    fin: true,
                    ack: true,
                    ..Default::default()
                },
                payload: 0,
                window: self.config.recv_window,
            });
        }

        // 5. Pure cumulative ACK when no data could carry it.
        if self.ack_pending {
            self.ack_pending = false;
            self.unacked_segments = 0;
            self.ack_deadline = None;
            self.stats.pure_acks_sent += 1;
            return Some(self.pure_ack(rcv_nxt));
        }
        None
    }

    fn pure_ack(&self, rcv_nxt: SeqNum) -> Segment {
        Segment {
            seq: self.snd_nxt,
            ack: rcv_nxt,
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
            payload: 0,
            window: self.config.recv_window,
        }
    }
}

// --- snapshot support -------------------------------------------------
//
// `EndpointMetrics` is deliberately excluded from the blob: instruments
// are shared `Arc` cells owned by the embedder's `MetricsHandle`, and a
// restored endpoint gets them re-wired via `attach_metrics` by whoever
// rebuilt the world. Everything else is value state.

use simnet::snapshot::{Snap, SnapReader, SnapWriter};

impl Snap for TcpConfig {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.mss);
        w.put_u32(self.init_cwnd_segs);
        w.put_u32(self.recv_window);
        w.put_bool(self.delayed_ack);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        TcpConfig {
            mss: r.get_u32(),
            init_cwnd_segs: r.get_u32(),
            recv_window: r.get_u32(),
            delayed_ack: r.get_bool(),
        }
    }
}

impl Snap for TcpState {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            TcpState::Closed => 0,
            TcpState::Listen => 1,
            TcpState::SynSent => 2,
            TcpState::SynRcvd => 3,
            TcpState::Established => 4,
            TcpState::FinWait => 5,
            TcpState::CloseWait => 6,
            TcpState::Closing => 7,
        });
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        match r.get_u8() {
            0 => TcpState::Closed,
            1 => TcpState::Listen,
            2 => TcpState::SynSent,
            3 => TcpState::SynRcvd,
            4 => TcpState::Established,
            5 => TcpState::FinWait,
            6 => TcpState::CloseWait,
            7 => TcpState::Closing,
            t => panic!("snapshot: bad TcpState tag {t}"),
        }
    }
}

impl Snap for TcpStats {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.data_segments_sent);
        w.put_u64(self.pure_acks_sent);
        w.put_u64(self.piggybacked_acks_sent);
        w.put_u64(self.dupacks_sent);
        w.put_u64(self.retransmissions);
        w.put_u64(self.bytes_acked);
        w.put_u64(self.segments_received);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        TcpStats {
            data_segments_sent: r.get_u64(),
            pure_acks_sent: r.get_u64(),
            piggybacked_acks_sent: r.get_u64(),
            dupacks_sent: r.get_u64(),
            retransmissions: r.get_u64(),
            bytes_acked: r.get_u64(),
            segments_received: r.get_u64(),
        }
    }
}

impl Snap for Endpoint {
    fn snap(&self, w: &mut SnapWriter) {
        self.config.snap(w);
        self.state.snap(w);
        self.iss.snap(w);
        self.snd_una.snap(w);
        self.snd_nxt.snap(w);
        w.put_u64(self.snd_buffered);
        w.put_u64(self.written_total);
        self.cc.snap(w);
        self.rtt.snap(w);
        w.put_u32(self.peer_window);
        self.rtt_probe.snap(w);
        self.rtx_deadline.snap(w);
        w.put_bool(self.retransmit_pending);
        w.put_bool(self.fin_queued);
        self.fin_seq.snap(w);
        w.put_bool(self.syn_emitted);
        w.put_bool(self.handshake_rtx);
        self.reasm.snap(w);
        w.put_bool(self.ack_pending);
        w.put_u32(self.dupacks_pending);
        w.put_u32(self.unacked_segments);
        self.ack_deadline.snap(w);
        w.put_bool(self.fin_received);
        w.put_u64(self.delivered_unread);
        w.put_bool(self.eof_signalled);
        self.stats.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Self {
        Endpoint {
            config: Snap::unsnap(r),
            state: Snap::unsnap(r),
            iss: Snap::unsnap(r),
            snd_una: Snap::unsnap(r),
            snd_nxt: Snap::unsnap(r),
            snd_buffered: r.get_u64(),
            written_total: r.get_u64(),
            cc: Snap::unsnap(r),
            rtt: Snap::unsnap(r),
            peer_window: r.get_u32(),
            rtt_probe: Snap::unsnap(r),
            rtx_deadline: Snap::unsnap(r),
            retransmit_pending: r.get_bool(),
            fin_queued: r.get_bool(),
            fin_seq: Snap::unsnap(r),
            syn_emitted: r.get_bool(),
            handshake_rtx: r.get_bool(),
            reasm: Snap::unsnap(r),
            ack_pending: r.get_bool(),
            dupacks_pending: r.get_u32(),
            unacked_segments: r.get_u32(),
            ack_deadline: Snap::unsnap(r),
            fin_received: r.get_bool(),
            delivered_unread: r.get_u64(),
            eof_signalled: r.get_bool(),
            stats: Snap::unsnap(r),
            metrics: EndpointMetrics::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(now: SimTime) -> (Endpoint, Endpoint) {
        let mut a = Endpoint::new(TcpConfig::default(), SeqNum(1000));
        let mut b = Endpoint::new(TcpConfig::default(), SeqNum(5000));
        b.listen();
        a.connect(now);
        (a, b)
    }

    /// Exchanges every pending segment until both sides go quiet.
    /// Returns the number of segments that crossed the wire.
    fn pump(a: &mut Endpoint, b: &mut Endpoint, now: SimTime) -> usize {
        let mut crossed = 0;
        loop {
            let mut progress = false;
            while let Some(seg) = a.poll_segment(now) {
                b.on_segment(seg, now);
                crossed += 1;
                progress = true;
            }
            while let Some(seg) = b.poll_segment(now) {
                a.on_segment(seg, now);
                crossed += 1;
                progress = true;
            }
            if !progress {
                return crossed;
            }
        }
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let now = SimTime::ZERO;
        let (mut a, mut b) = pair(now);
        pump(&mut a, &mut b, now);
        assert!(a.is_established());
        assert!(b.is_established());
        assert_eq!(a.state(), TcpState::Established);
        assert_eq!(b.state(), TcpState::Established);
    }

    #[test]
    fn lossless_transfer_delivers_all_bytes() {
        let now = SimTime::ZERO;
        let (mut a, mut b) = pair(now);
        pump(&mut a, &mut b, now);
        a.write(1_000_000);
        // Instant-feedback pump: ACKs return immediately, letting cwnd grow.
        pump(&mut a, &mut b, now);
        assert_eq!(b.take_delivered(), 1_000_000);
        assert_eq!(a.send_backlog(), 0);
        assert_eq!(a.flight_size(), 0);
    }

    #[test]
    fn bidirectional_transfer_piggybacks_acks() {
        let now = SimTime::ZERO;
        let (mut a, mut b) = pair(now);
        pump(&mut a, &mut b, now);
        a.write(500_000);
        b.write(500_000);
        pump(&mut a, &mut b, now);
        assert_eq!(a.take_delivered(), 500_000);
        assert_eq!(b.take_delivered(), 500_000);
        let sa = a.stats();
        // With traffic flowing both ways, piggybacked ACKs dominate.
        assert!(
            sa.piggybacked_acks_sent > sa.pure_acks_sent,
            "piggybacked={} pure={}",
            sa.piggybacked_acks_sent,
            sa.pure_acks_sent
        );
    }

    #[test]
    fn dupacks_are_pure_and_trigger_fast_retransmit() {
        let now = SimTime::ZERO;
        let (mut a, mut b) = pair(now);
        pump(&mut a, &mut b, now);
        // Grow the window first so five segments can be in flight at once.
        a.write(200_000);
        pump(&mut a, &mut b, now);
        b.take_delivered();

        a.write(5 * 1460);
        let mut segs = Vec::new();
        while let Some(s) = a.poll_segment(now) {
            segs.push(s);
        }
        assert!(
            segs.len() >= 4,
            "need >=4 in-flight segments, got {}",
            segs.len()
        );
        // Drop the first; deliver the rest out of order.
        for s in &segs[1..] {
            b.on_segment(*s, now);
        }
        let mut dupacks = 0;
        let mut outs = Vec::new();
        while let Some(s) = b.poll_segment(now) {
            assert!(s.is_pure_ack(), "DUPACK must be pure: {s:?}");
            dupacks += 1;
            outs.push(s);
        }
        assert_eq!(dupacks as usize, segs.len() - 1);
        // Feed the dupacks back: the third triggers fast retransmit.
        for s in outs {
            a.on_segment(s, now);
        }
        let rtx = a.poll_segment(now).expect("fast retransmit due");
        assert_eq!(rtx.seq, segs[0].seq);
        assert!(a.congestion().in_recovery());
        // Deliver the retransmission: receiver acks everything.
        b.on_segment(rtx, now);
        pump(&mut a, &mut b, now);
        assert!(!a.congestion().in_recovery());
        assert_eq!(b.take_delivered(), 5 * 1460);
    }

    #[test]
    fn rto_retransmits_after_silence() {
        let now = SimTime::ZERO;
        let (mut a, mut b) = pair(now);
        pump(&mut a, &mut b, now);
        a.write(1460);
        let seg = a.poll_segment(now).expect("data segment");
        // Lose it. Fire the timer at its deadline.
        let deadline = a.next_timer_at().expect("rtx timer armed");
        a.on_timer(deadline);
        let rtx = a.poll_segment(deadline).expect("RTO retransmission");
        assert_eq!(rtx.seq, seg.seq);
        assert_eq!(a.stats().retransmissions, 1);
        assert_eq!(a.congestion().cwnd(), 1460, "cwnd collapses to 1 MSS");
        // Deliver and complete.
        b.on_segment(rtx, deadline);
        pump(&mut a, &mut b, deadline);
        assert_eq!(b.take_delivered(), 1460);
        assert_eq!(a.next_timer_at(), None, "timer disarmed when idle");
    }

    #[test]
    fn syn_loss_is_recovered_by_handshake_timer() {
        let now = SimTime::ZERO;
        let mut a = Endpoint::new(TcpConfig::default(), SeqNum(0));
        let mut b = Endpoint::new(TcpConfig::default(), SeqNum(0));
        b.listen();
        a.connect(now);
        let _lost_syn = a.poll_segment(now).expect("SYN");
        assert!(a.poll_segment(now).is_none(), "one SYN at a time");
        let deadline = a.next_timer_at().unwrap();
        a.on_timer(deadline);
        let syn2 = a.poll_segment(deadline).expect("SYN retransmission");
        assert!(syn2.flags.syn);
        b.on_segment(syn2, deadline);
        pump(&mut a, &mut b, deadline);
        assert!(a.is_established() && b.is_established());
    }

    #[test]
    fn graceful_close_both_directions() {
        let now = SimTime::ZERO;
        let (mut a, mut b) = pair(now);
        pump(&mut a, &mut b, now);
        a.write(100);
        a.close();
        pump(&mut a, &mut b, now);
        assert_eq!(b.take_delivered(), 100);
        assert!(b.take_eof());
        assert!(!b.take_eof(), "EOF reported once");
        assert_eq!(b.state(), TcpState::CloseWait);
        b.close();
        pump(&mut a, &mut b, now);
        assert!(a.is_closed());
        assert!(b.is_closed());
    }

    #[test]
    fn abort_emits_rst_and_peer_resets() {
        let now = SimTime::ZERO;
        let (mut a, mut b) = pair(now);
        pump(&mut a, &mut b, now);
        let rst = a.abort().expect("RST for open connection");
        assert!(rst.flags.rst);
        b.on_segment(rst, now);
        assert!(b.is_closed());
        assert!(a.is_closed());
        assert_eq!(a.next_timer_at(), None);
    }

    #[test]
    fn window_limits_flight_size() {
        let now = SimTime::ZERO;
        let (mut a, mut b) = pair(now);
        pump(&mut a, &mut b, now);
        a.write(10_000_000);
        let mut burst = 0u32;
        while let Some(seg) = a.poll_segment(now) {
            burst += seg.payload;
        }
        assert!(burst <= a.congestion().cwnd());
        assert!(a.flight_size() <= a.congestion().cwnd());
        // Nothing delivered yet on the other side.
        assert_eq!(b.take_delivered(), 0);
    }

    #[test]
    fn flight_respects_tiny_peer_window() {
        let now = SimTime::ZERO;
        let small = TcpConfig {
            recv_window: 2000, // peer advertises less than 2 MSS
            ..TcpConfig::default()
        };
        let mut a = Endpoint::new(TcpConfig::default(), SeqNum(1));
        let mut b = Endpoint::new(small, SeqNum(500));
        b.listen();
        a.connect(now);
        pump(&mut a, &mut b, now);
        a.write(1_000_000);
        let mut burst = 0u32;
        while let Some(seg) = a.poll_segment(now) {
            burst += seg.payload;
        }
        assert!(
            burst <= 2000,
            "flight {burst} exceeds the peer's 2000-byte window"
        );
    }

    #[test]
    fn bogus_ack_beyond_snd_nxt_is_ignored() {
        let now = SimTime::ZERO;
        let (mut a, mut b) = pair(now);
        pump(&mut a, &mut b, now);
        a.write(1460);
        let _seg = a.poll_segment(now).expect("data out");
        let una_before = a.flight_size();
        // Forge an ACK far beyond anything a sent.
        let forged = Segment {
            seq: SeqNum(0),
            ack: SeqNum(1_000_000_000),
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
            payload: 0,
            window: 65535,
        };
        a.on_segment(forged, now);
        assert_eq!(a.flight_size(), una_before, "forged ACK must not advance");
        assert!(!a.is_closed());
    }

    #[test]
    fn delayed_ack_coalesces_every_second_segment() {
        let now = SimTime::ZERO;
        let cfg = TcpConfig {
            delayed_ack: true,
            ..TcpConfig::default()
        };
        let mut a = Endpoint::new(cfg, SeqNum(1));
        let mut b = Endpoint::new(cfg, SeqNum(500));
        b.listen();
        a.connect(now);
        pump(&mut a, &mut b, now);
        // One full segment arrives: the ACK is delayed, not sent.
        a.write(1460);
        let s1 = a.poll_segment(now).expect("segment 1");
        b.on_segment(s1, now);
        assert!(b.poll_segment(now).is_none(), "first segment's ACK delayed");
        assert!(b.next_timer_at().is_some(), "delayed-ACK timer armed");
        // Second segment: the coalesced ACK goes out at once.
        a.write(1460);
        let s2 = a.poll_segment(now).expect("segment 2");
        b.on_segment(s2, now);
        let ack = b.poll_segment(now).expect("coalesced ACK");
        a.on_segment(ack, now);
        assert_eq!(a.flight_size(), 0, "both segments acknowledged");
    }

    #[test]
    fn delayed_ack_timer_fires_for_a_lone_segment() {
        let now = SimTime::ZERO;
        let cfg = TcpConfig {
            delayed_ack: true,
            ..TcpConfig::default()
        };
        let mut a = Endpoint::new(cfg, SeqNum(1));
        let mut b = Endpoint::new(cfg, SeqNum(500));
        b.listen();
        a.connect(now);
        pump(&mut a, &mut b, now);
        a.write(1000);
        let s = a.poll_segment(now).expect("segment");
        b.on_segment(s, now);
        assert!(b.poll_segment(now).is_none());
        let deadline = b.next_timer_at().expect("ACK timer");
        assert!(deadline <= now + SimDuration::from_millis(200));
        b.on_timer(deadline);
        let ack = b.poll_segment(deadline).expect("delayed ACK fires");
        assert!(ack.is_pure_ack());
        a.on_segment(ack, deadline);
        assert_eq!(a.flight_size(), 0);
    }

    #[test]
    fn delayed_ack_never_delays_dupacks() {
        let now = SimTime::ZERO;
        let cfg = TcpConfig {
            delayed_ack: true,
            ..TcpConfig::default()
        };
        let mut a = Endpoint::new(cfg, SeqNum(1));
        let mut b = Endpoint::new(cfg, SeqNum(500));
        b.listen();
        a.connect(now);
        pump(&mut a, &mut b, now);
        a.write(3 * 1460);
        let s1 = a.poll_segment(now).unwrap();
        let s2 = a.poll_segment(now).unwrap();
        // Lose s1; deliver s2 out of order.
        let _ = s1;
        b.on_segment(s2, now);
        let dup = b.poll_segment(now).expect("immediate DUPACK");
        assert!(dup.is_pure_ack());
    }

    #[test]
    fn data_segment_with_same_ack_is_not_dupack() {
        let now = SimTime::ZERO;
        let (mut a, mut b) = pair(now);
        pump(&mut a, &mut b, now);
        a.write(4 * 1460);
        // Drain a's segments but don't deliver (so a has flight > 0).
        let mut held = Vec::new();
        while let Some(s) = a.poll_segment(now) {
            held.push(s);
        }
        // b sends data repeating its current ack number.
        b.write(1460);
        let data = b.poll_segment(now).expect("data from b");
        assert!(data.is_piggybacked());
        let before = a.congestion().dupacks();
        a.on_segment(data, now);
        assert_eq!(a.congestion().dupacks(), before, "no dupack counted");
    }
}
