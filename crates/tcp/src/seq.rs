//! 32-bit wrapping TCP sequence-number arithmetic (RFC 793 §3.3).
//!
//! Comparisons are defined modulo 2³², valid as long as the live window is
//! smaller than 2³¹ bytes — true by construction for our simulated
//! connections.

use std::fmt;

/// A TCP sequence number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// Zero, used as the conventional initial sequence number in tests.
    pub const ZERO: SeqNum = SeqNum(0);

    /// `self + n` modulo 2³². Deliberately named like (but distinct from)
    /// `std::ops::Add`: the right-hand side is a byte count, not a
    /// sequence number, so the operator trait would be misleading.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(n))
    }

    /// Bytes from `self` to `later`, assuming `later` is not before `self`.
    ///
    /// The result is exact modulo 2³²; callers must know the true distance
    /// is below 2³¹ (guaranteed by window sizing).
    pub fn distance_to(self, later: SeqNum) -> u32 {
        later.0.wrapping_sub(self.0)
    }

    /// True when `self` is strictly before `other` in window order.
    pub fn before(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// True when `self` is before or equal to `other`.
    pub fn before_eq(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) >= 0
    }

    /// True when `self` is strictly after `other`.
    pub fn after(self, other: SeqNum) -> bool {
        other.before(self)
    }

    /// True when `self` is after or equal to `other`.
    pub fn after_eq(self, other: SeqNum) -> bool {
        other.before_eq(self)
    }

    /// The later of two sequence numbers in window order.
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.after_eq(other) {
            self
        } else {
            other
        }
    }

    /// The earlier of two sequence numbers in window order.
    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.before_eq(other) {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Seq({})", self.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl simnet::snapshot::Snap for SeqNum {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        w.put_u32(self.0);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        SeqNum(r.get_u32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        let a = SeqNum(100);
        let b = SeqNum(200);
        assert!(a.before(b));
        assert!(b.after(a));
        assert!(a.before_eq(a));
        assert!(!a.before(a));
    }

    #[test]
    fn ordering_across_wraparound() {
        let a = SeqNum(u32::MAX - 10);
        let b = a.add(100); // wraps
        assert!(a.before(b));
        assert_eq!(a.distance_to(b), 100);
    }

    #[test]
    fn min_max_across_wraparound() {
        let a = SeqNum(u32::MAX - 1);
        let b = SeqNum(5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn add_wraps() {
        assert_eq!(SeqNum(u32::MAX).add(1), SeqNum(0));
    }
}
