//! TCP segment representation.
//!
//! Segments carry a *byte count* rather than actual payload bytes: the
//! simulation models data as opaque in-order octets, and the framing layer
//! above TCP reconstitutes application messages from delivered byte counts.
//! Everything that matters to the paper — on-wire length, piggybacked vs.
//! pure ACKs, DUPACK identification — is preserved exactly.

use crate::seq::SeqNum;
use std::fmt;

/// TCP/IP header overhead per segment, in bytes (20 TCP + 20 IP).
pub const HEADER_BYTES: u32 = 40;

/// Control-flag bits carried by a segment.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct SegFlags {
    /// Synchronize: connection setup.
    pub syn: bool,
    /// Acknowledgement field is valid. Per the TCP specification (noted in
    /// the paper, §3.2 fn. 2) every segment except the initial SYN carries
    /// a valid ACK.
    pub ack: bool,
    /// Finish: sender has no more data.
    pub fin: bool,
    /// Reset: abort the connection.
    pub rst: bool,
}

impl fmt::Debug for SegFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.ack {
            parts.push("ACK");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        write!(f, "[{}]", parts.join("|"))
    }
}

/// One TCP segment on the wire.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: SeqNum,
    /// Cumulative acknowledgement: the next byte expected from the peer.
    pub ack: SeqNum,
    /// Control flags.
    pub flags: SegFlags,
    /// Payload length in bytes (zero for pure ACKs and control segments).
    pub payload: u32,
    /// Advertised receive window in bytes.
    pub window: u32,
}

impl Segment {
    /// Total on-wire size: headers plus payload. This is what the link and
    /// wireless BER models see — the reason a piggybacked ACK is more
    /// likely to be lost than a pure one.
    pub fn wire_bytes(&self) -> u32 {
        HEADER_BYTES + self.payload
    }

    /// A pure ACK: acknowledgement with no payload and no SYN/FIN/RST.
    pub fn is_pure_ack(&self) -> bool {
        self.flags.ack && self.payload == 0 && !self.flags.syn && !self.flags.fin && !self.flags.rst
    }

    /// A data segment carrying a (piggybacked) acknowledgement.
    pub fn is_piggybacked(&self) -> bool {
        self.flags.ack && self.payload > 0
    }

    /// Sequence number of the byte after this segment's payload (and
    /// SYN/FIN, which each occupy one sequence number).
    pub fn seq_end(&self) -> SeqNum {
        let mut n = self.payload;
        if self.flags.syn {
            n += 1;
        }
        if self.flags.fin {
            n += 1;
        }
        self.seq.add(n)
    }
}

impl fmt::Debug for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Segment {{ seq={} ack={} {:?} len={} win={} }}",
            self.seq, self.ack, self.flags, self.payload, self.window
        )
    }
}

impl simnet::snapshot::Snap for SegFlags {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        w.put_u8(u8::from(self.syn) | u8::from(self.ack) << 1 | u8::from(self.fin) << 2 | u8::from(self.rst) << 3);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        let b = r.get_u8();
        SegFlags {
            syn: b & 1 != 0,
            ack: b & 2 != 0,
            fin: b & 4 != 0,
            rst: b & 8 != 0,
        }
    }
}

impl simnet::snapshot::Snap for Segment {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        self.seq.snap(w);
        self.ack.snap(w);
        self.flags.snap(w);
        w.put_u32(self.payload);
        w.put_u32(self.window);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        Segment {
            seq: simnet::snapshot::Snap::unsnap(r),
            ack: simnet::snapshot::Snap::unsnap(r),
            flags: simnet::snapshot::Snap::unsnap(r),
            payload: r.get_u32(),
            window: r.get_u32(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_seg(payload: u32) -> Segment {
        Segment {
            seq: SeqNum(1000),
            ack: SeqNum(500),
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
            payload,
            window: 65535,
        }
    }

    #[test]
    fn wire_size_includes_headers() {
        assert_eq!(data_seg(1460).wire_bytes(), 1500);
        assert_eq!(data_seg(0).wire_bytes(), 40);
    }

    #[test]
    fn pure_ack_classification() {
        assert!(data_seg(0).is_pure_ack());
        assert!(!data_seg(100).is_pure_ack());
        assert!(data_seg(100).is_piggybacked());
        let mut syn = data_seg(0);
        syn.flags.syn = true;
        assert!(!syn.is_pure_ack());
    }

    #[test]
    fn seq_end_counts_flags() {
        let mut s = data_seg(10);
        assert_eq!(s.seq_end(), SeqNum(1010));
        s.flags.fin = true;
        assert_eq!(s.seq_end(), SeqNum(1011));
        s.flags.syn = true;
        assert_eq!(s.seq_end(), SeqNum(1012));
    }

    #[test]
    fn debug_format_mentions_flags() {
        let s = data_seg(5);
        let d = format!("{s:?}");
        assert!(d.contains("ACK"));
        assert!(d.contains("len=5"));
    }
}
