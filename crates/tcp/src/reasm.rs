//! Receive-side reassembly.
//!
//! Tracks which byte ranges have arrived, delivers the in-order prefix to
//! the application, and reports whether an arriving segment was in order —
//! the signal that decides between a cumulative ACK and a *duplicate* ACK.
//!
//! Sequence numbers wrap at 2³²; internally everything is converted to a
//! monotone `u64` stream offset anchored at the initial `rcv.nxt`, which
//! removes wraparound from the interval logic entirely.

use crate::seq::SeqNum;
use std::collections::BTreeMap;

/// Effect of an arriving data segment on the receive buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataOutcome {
    /// Bytes newly delivered in order to the application by this segment
    /// (includes previously buffered out-of-order data it unlocked).
    pub delivered: u64,
    /// True when the segment did *not* advance `rcv.nxt` — either a hole
    /// precedes it or it was entirely duplicate — i.e. a DUPACK is due.
    pub out_of_order: bool,
}

/// Reassembly state for one direction of a connection.
#[derive(Debug, Clone)]
pub struct Reassembly {
    /// Next expected sequence number (what we ACK).
    rcv_nxt: SeqNum,
    /// Monotone stream offset of `rcv_nxt`.
    nxt_offset: u64,
    /// Out-of-order intervals, as `start -> end` stream offsets (end
    /// exclusive), non-overlapping and non-adjacent.
    ooo: BTreeMap<u64, u64>,
    /// Total bytes delivered in order.
    delivered_total: u64,
}

impl Reassembly {
    /// Creates reassembly state expecting `initial` as the first byte.
    pub fn new(initial: SeqNum) -> Self {
        Reassembly {
            rcv_nxt: initial,
            nxt_offset: 0,
            ooo: BTreeMap::new(),
            delivered_total: 0,
        }
    }

    /// The cumulative acknowledgement to advertise.
    pub fn rcv_nxt(&self) -> SeqNum {
        self.rcv_nxt
    }

    /// Total in-order bytes delivered so far.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Bytes buffered out of order (waiting behind a hole).
    pub fn buffered_ooo(&self) -> u64 {
        self.ooo.iter().map(|(&s, &e)| e - s).sum()
    }

    /// Processes a data segment `[seq, seq+len)`.
    ///
    /// `len == 0` (a pure ACK) never counts as out of order.
    pub fn on_data(&mut self, seq: SeqNum, len: u32) -> DataOutcome {
        if len == 0 {
            return DataOutcome {
                delivered: 0,
                out_of_order: false,
            };
        }
        // Convert to stream offsets. A segment at or before rcv_nxt has a
        // relative distance that, interpreted signed, is <= 0.
        let rel = self.rcv_nxt.distance_to(seq) as i32;
        let start = if rel >= 0 {
            self.nxt_offset + rel as u64
        } else {
            // Starts before rcv_nxt: the overlap before nxt is duplicate.
            let behind = (-rel) as u64;
            if behind >= len as u64 {
                // Entirely old data: duplicate -> dupack.
                return DataOutcome {
                    delivered: 0,
                    out_of_order: true,
                };
            }
            self.nxt_offset
        };
        let end = if rel >= 0 {
            start + len as u64
        } else {
            self.nxt_offset + (len as u64 - (-rel) as u64)
        };

        self.insert_interval(start, end);

        // Drain the in-order prefix.
        let mut delivered = 0u64;
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.nxt_offset {
                break;
            }
            self.ooo.pop_first();
            if e > self.nxt_offset {
                delivered += e - self.nxt_offset;
                self.nxt_offset = e;
            }
        }
        if delivered > 0 {
            // Delivered fits in u32 per segment batch by construction
            // (bounded by the receive window), but accumulate as u64.
            self.rcv_nxt = self.rcv_nxt.add(delivered as u32);
            self.delivered_total += delivered;
        }
        DataOutcome {
            delivered,
            out_of_order: delivered == 0,
        }
    }

    /// Consumes the sequence number occupied by an in-order FIN.
    ///
    /// The caller must have verified the FIN is at `rcv_nxt`.
    pub fn on_fin(&mut self) {
        debug_assert!(
            self.ooo.is_empty(),
            "in-order FIN implies no out-of-order data remains"
        );
        self.rcv_nxt = self.rcv_nxt.add(1);
        self.nxt_offset += 1;
    }

    /// Inserts `[start, end)` into the interval set, merging overlaps.
    fn insert_interval(&mut self, start: u64, end: u64) {
        debug_assert!(start < end);
        let mut new_start = start;
        let mut new_end = end;
        // Merge with a predecessor that overlaps or touches.
        if let Some((&s, &e)) = self.ooo.range(..=start).next_back() {
            if e >= start {
                new_start = s;
                new_end = new_end.max(e);
                self.ooo.remove(&s);
            }
        }
        // Merge with successors.
        while let Some((&s, &e)) = self.ooo.range(new_start..).next() {
            if s > new_end {
                break;
            }
            new_end = new_end.max(e);
            self.ooo.remove(&s);
        }
        self.ooo.insert(new_start, new_end);
    }
}

impl simnet::snapshot::Snap for Reassembly {
    fn snap(&self, w: &mut simnet::snapshot::SnapWriter) {
        self.rcv_nxt.snap(w);
        w.put_u64(self.nxt_offset);
        self.ooo.snap(w);
        w.put_u64(self.delivered_total);
    }
    fn unsnap(r: &mut simnet::snapshot::SnapReader<'_>) -> Self {
        Reassembly {
            rcv_nxt: simnet::snapshot::Snap::unsnap(r),
            nxt_offset: r.get_u64(),
            ooo: simnet::snapshot::Snap::unsnap(r),
            delivered_total: r.get_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut r = Reassembly::new(SeqNum(100));
        let out = r.on_data(SeqNum(100), 50);
        assert_eq!(out.delivered, 50);
        assert!(!out.out_of_order);
        assert_eq!(r.rcv_nxt(), SeqNum(150));
        assert_eq!(r.delivered_total(), 50);
    }

    #[test]
    fn gap_buffers_and_flags_ooo() {
        let mut r = Reassembly::new(SeqNum(0));
        let out = r.on_data(SeqNum(100), 50);
        assert_eq!(out.delivered, 0);
        assert!(out.out_of_order);
        assert_eq!(r.rcv_nxt(), SeqNum(0));
        assert_eq!(r.buffered_ooo(), 50);
        // Filling the hole delivers everything.
        let out = r.on_data(SeqNum(0), 100);
        assert_eq!(out.delivered, 150);
        assert!(!out.out_of_order);
        assert_eq!(r.rcv_nxt(), SeqNum(150));
        assert_eq!(r.buffered_ooo(), 0);
    }

    #[test]
    fn duplicate_data_is_ooo() {
        let mut r = Reassembly::new(SeqNum(0));
        r.on_data(SeqNum(0), 100);
        let out = r.on_data(SeqNum(0), 100);
        assert_eq!(out.delivered, 0);
        assert!(out.out_of_order);
        assert_eq!(r.delivered_total(), 100);
    }

    #[test]
    fn partial_overlap_delivers_new_suffix() {
        let mut r = Reassembly::new(SeqNum(0));
        r.on_data(SeqNum(0), 100);
        let out = r.on_data(SeqNum(50), 100);
        assert_eq!(out.delivered, 50);
        assert!(!out.out_of_order);
        assert_eq!(r.rcv_nxt(), SeqNum(150));
    }

    #[test]
    fn interval_merging() {
        let mut r = Reassembly::new(SeqNum(0));
        r.on_data(SeqNum(100), 50); // [100,150)
        r.on_data(SeqNum(200), 50); // [200,250)
        r.on_data(SeqNum(150), 50); // bridges them
        assert_eq!(r.buffered_ooo(), 150);
        let out = r.on_data(SeqNum(0), 100);
        assert_eq!(out.delivered, 250);
    }

    #[test]
    fn works_across_seq_wrap() {
        let start = SeqNum(u32::MAX - 49);
        let mut r = Reassembly::new(start);
        let out = r.on_data(start, 100); // crosses the wrap point
        assert_eq!(out.delivered, 100);
        assert_eq!(r.rcv_nxt(), SeqNum(50));
        let out = r.on_data(SeqNum(50), 10);
        assert_eq!(out.delivered, 10);
    }

    #[test]
    fn zero_length_is_not_ooo() {
        let mut r = Reassembly::new(SeqNum(0));
        let out = r.on_data(SeqNum(0), 0);
        assert_eq!(out.delivered, 0);
        assert!(!out.out_of_order);
    }
}
