//! # wp2p-suite — the workspace umbrella
//!
//! Re-exports every crate of the wP2P reproduction under one roof so the
//! examples and integration tests (and downstream experimentation) can
//! depend on a single package:
//!
//! * [`simnet`] — the discrete-event substrate.
//! * [`sim_tcp`] — sans-IO bidirectional TCP.
//! * [`bittorrent`] — the protocol implementation.
//! * [`media_model`] — playability models.
//! * [`wp2p`] — the paper's contribution (AM, IA, MA).
//! * [`simulation`] — the packet- and flow-level worlds plus per-figure
//!   experiment drivers.
//!
//! See the repository README for the quickstart, DESIGN.md for the
//! architecture and modeling decisions, and EXPERIMENTS.md for the
//! paper-vs-reproduction record.

pub use bittorrent;
pub use media_model;
pub use p2p_simulation as simulation;
pub use sim_tcp;
pub use simnet;
pub use wp2p;
