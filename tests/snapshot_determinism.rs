//! Differential snapshot battery: `restore(save(w))` then running to
//! time T must be **byte-identical** to running straight through to T.
//!
//! Every test compares full serialized world blobs — not summaries — so
//! any divergence in any subsystem (event queue, RNG streams, client
//! state, rate engine, tracker, metrics) fails loudly. The matrix
//! covers both worlds, both scheduler backends, both rate-solver paths,
//! snapshots taken mid-fault-window, inside an announce backoff ladder,
//! and at times that land between timer-wheel cascades.

use bittorrent::client::{ClientConfig, PexConfig};
use bittorrent::lifecycle::ResilienceConfig;
use bittorrent::metainfo::Metainfo;
use bittorrent::tracker::TrackerConfig;
use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskKey, TaskSpec, TorrentSpec};
use p2p_simulation::packet::{PacketConfig, PacketWorld};
use p2p_simulation::rates::SolverMode;
use simnet::addr::NodeId;
use simnet::event::Scheduler;
use simnet::fault::{FaultInjector, FaultKind, FaultPlan, FaultPlanConfig};
use simnet::rng::SimRng;
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use simnet::wireless::WirelessConfig;

const MB: u64 = 1024 * 1024;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn at(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

// ----------------------------------------------------------------------
// Flow-world scenarios
// ----------------------------------------------------------------------

/// A quick fig3b-shaped swarm: campus seed, two residential leeches,
/// one wireless mobile leech with a hand-off schedule.
fn fig3b_world(seed: u64, scheduler: Scheduler, solver: SolverMode) -> FlowWorld {
    let meta = Metainfo::synthetic("snap.bin", "tr", 256 * 1024, 16 * MB, seed);
    let torrent = TorrentSpec::from_metainfo(&meta, 256 * 1024);
    let cfg = FlowConfig {
        scheduler,
        rate_solver: solver,
        ..FlowConfig::default()
    };
    let mut w = FlowWorld::new(cfg, seed);
    let seed_node = w.add_node(Access::campus());
    w.add_task(TaskSpec::default_client(seed_node, torrent, true));
    for i in 0..2 {
        let n = w.add_node(Access::residential());
        let mut spec = TaskSpec::default_client(n, torrent, false);
        spec.start_fraction = Some(0.2 * (i + 1) as f64);
        w.add_task(spec);
    }
    let mobile = w.add_node(Access::Wireless {
        capacity: 2_000_000.0 / 8.0,
    });
    w.add_task(TaskSpec::default_client(mobile, torrent, false));
    w.set_mobility(
        mobile,
        MobilityProcess::periodic(secs(25), secs(4)),
    );
    w.start();
    w
}

/// A soak-shaped swarm: armed clients + stall watchdog, for fault and
/// backoff-ladder snapshots.
fn armed_world(seed: u64, scheduler: Scheduler) -> (FlowWorld, Vec<TaskKey>) {
    let meta = Metainfo::synthetic("snap2.bin", "tr", 256 * 1024, 16 * MB, seed);
    let torrent = TorrentSpec::from_metainfo(&meta, 256 * 1024);
    let cfg = FlowConfig {
        scheduler,
        stall_timeout: Some(secs(15)),
        ..FlowConfig::default()
    };
    let mut w = FlowWorld::new(cfg, seed);
    let armed = || {
        Box::new(|| ClientConfig {
            resilience: ResilienceConfig::armed(),
            ..ClientConfig::default()
        }) as Box<dyn Fn() -> ClientConfig>
    };
    let seed_node = w.add_node(Access::campus());
    let mut seed_spec = TaskSpec::default_client(seed_node, torrent, true);
    seed_spec.make_config = armed();
    let mut tasks = vec![w.add_task(seed_spec)];
    for i in 0..2 {
        let n = w.add_node(Access::residential());
        let mut spec = TaskSpec::default_client(n, torrent, false);
        spec.make_config = armed();
        spec.start_fraction = Some(0.25 * (i + 1) as f64);
        tasks.push(w.add_task(spec));
    }
    w.start();
    (w, tasks)
}

/// The core differential check: straight-through vs save→rebuild→
/// restore→run, compared as full serialized blobs at time `t2`.
fn assert_flow_differential(
    build: impl Fn() -> FlowWorld,
    t1: SimTime,
    t2: SimTime,
) {
    // Straight run, snapshotting in passing at t1.
    let mut straight = build();
    straight.run_until(t1, |_| {});
    let blob = straight.save();
    straight.run_until(t2, |_| {});
    let want = straight.save();

    // Rebuild from the same recipe, restore, run the remainder.
    let mut restored = build();
    restored.restore(&blob);
    assert_eq!(restored.now(), {
        let mut probe = build();
        probe.restore(&blob);
        probe.now()
    });
    restored.run_until(t2, |_| {});
    let got = restored.save();

    assert_eq!(
        want.len(),
        got.len(),
        "snapshot blobs differ in length after restore-then-run"
    );
    assert!(
        want == got,
        "restore-then-run diverged from straight-through run"
    );
    assert_eq!(straight.queue_stats(), restored.queue_stats());
    assert_eq!(straight.events_processed(), restored.events_processed());
    assert_eq!(straight.solver_stats(), restored.solver_stats());
}

#[test]
fn flow_fig3b_restore_is_byte_identical_heap() {
    assert_flow_differential(
        || fig3b_world(11, Scheduler::Heap, SolverMode::Incremental),
        at(40),
        at(90),
    );
}

#[test]
fn flow_fig3b_restore_is_byte_identical_wheel() {
    assert_flow_differential(
        || fig3b_world(11, Scheduler::Wheel, SolverMode::Incremental),
        at(40),
        at(90),
    );
}

#[test]
fn flow_fig3b_restore_is_byte_identical_full_solver() {
    assert_flow_differential(
        || fig3b_world(11, Scheduler::Wheel, SolverMode::Full),
        at(40),
        at(90),
    );
}

/// Snapshot at a time that is not a multiple of any tick or wheel slot
/// (odd microseconds): the wheel's cascade position must survive.
#[test]
fn flow_snapshot_between_wheel_cascades() {
    assert_flow_differential(
        || fig3b_world(23, Scheduler::Wheel, SolverMode::Incremental),
        SimTime::from_micros(33_333_337),
        at(80),
    );
}

/// Heap and wheel backends restored from their own blobs must agree
/// with their own straight runs even when the snapshot lands mid-tick.
#[test]
fn flow_snapshot_at_sub_tick_offset_heap() {
    assert_flow_differential(
        || fig3b_world(23, Scheduler::Heap, SolverMode::Incremental),
        SimTime::from_micros(33_333_337),
        at(80),
    );
}

// ----------------------------------------------------------------------
// Fault-window and backoff-ladder snapshots
// ----------------------------------------------------------------------

fn soak_plan(seed: u64, nodes: usize) -> FaultPlan {
    let mut p = FaultPlan::empty(seed);
    p.push(at(20), FaultKind::TrackerOutage { duration: secs(40) });
    p.push(
        at(25),
        FaultKind::LinkBlackhole {
            node: NodeId(0),
            duration: secs(25),
        },
    );
    if nodes > 2 {
        p.push(
            at(35),
            FaultKind::LossBurst {
                node: NodeId(2),
                ber: 1e-3,
                duration: secs(20),
            },
        );
    }
    p
}

/// Snapshot taken *inside* open fault windows (tracker outage + black
/// hole both active at t=30): the restored run must absorb the
/// remaining fault actions identically via `FaultInjector::skip_to`.
#[test]
fn flow_snapshot_mid_fault_window() {
    let plan = soak_plan(7, 3);
    let run = |snapshot_at: Option<SimTime>| -> (Vec<u8>, usize) {
        let (mut w, _tasks) = armed_world(7, Scheduler::Wheel);
        let mut inj = FaultInjector::new(&plan);
        let t_snap = snapshot_at.unwrap_or(SimTime::MAX);
        let mut blob: Option<(Vec<u8>, usize)> = None;
        w.run_driven_until(
            at(120),
            |w| {
                inj.poll(w);
            },
            |w| blob.is_none() && w.now() >= t_snap,
        );
        if snapshot_at.is_some() {
            blob = Some((w.save(), inj.applied()));
            // Resume the interrupted run to t=120 (the straight arm).
            w.run_driven_until(
                at(120),
                |w| {
                    inj.poll(w);
                },
                |_| false,
            );
        }
        match blob {
            Some(b) => b,
            None => (w.save(), inj.applied()),
        }
    };

    // Straight run to completion.
    let (want, _) = run(None);
    // Interrupted run: capture the mid-window blob + applied count.
    let (blob, applied) = {
        let (mut w, _tasks) = armed_world(7, Scheduler::Wheel);
        let mut inj = FaultInjector::new(&plan);
        w.run_driven_until(
            at(30),
            |w| {
                inj.poll(w);
            },
            |_| false,
        );
        assert!(w.tracker_is_down(), "snapshot must land inside the outage");
        (w.save(), inj.applied())
    };
    // Restored arm: rebuild world AND injector, skip absorbed actions.
    let (mut w, _tasks) = armed_world(7, Scheduler::Wheel);
    w.restore(&blob);
    let mut inj = FaultInjector::new(&plan);
    inj.skip_to(applied);
    w.run_driven_until(
        at(120),
        |w| {
            inj.poll(w);
        },
        |_| false,
    );
    let got = w.save();
    assert!(
        want == got,
        "mid-fault-window restore diverged from straight run"
    );
}

/// Snapshot inside an announce backoff ladder: armed clients have
/// accumulated failed announces during a tracker outage, so the restored
/// run must continue the ladder at the same rung.
#[test]
fn flow_snapshot_inside_backoff_ladder() {
    let plan = {
        let mut p = FaultPlan::empty(3);
        p.push(at(10), FaultKind::TrackerOutage { duration: secs(60) });
        p
    };
    let build = || armed_world(3, Scheduler::Wheel).0;
    // Straight arm.
    let mut straight = build();
    let mut inj = FaultInjector::new(&plan);
    straight.run_driven_until(
        at(45),
        |w| {
            inj.poll(w);
        },
        |_| false,
    );
    assert!(straight.tracker_is_down());
    let blob = straight.save();
    let applied = inj.applied();
    straight.run_driven_until(
        at(110),
        |w| {
            inj.poll(w);
        },
        |_| false,
    );
    let want = straight.save();
    // Restored arm.
    let mut restored = build();
    restored.restore(&blob);
    let mut inj2 = FaultInjector::new(&plan);
    inj2.skip_to(applied);
    restored.run_driven_until(
        at(110),
        |w| {
            inj2.poll(w);
        },
        |_| false,
    );
    let got = restored.save();
    assert!(
        want == got,
        "backoff-ladder restore diverged from straight run"
    );
}

// ----------------------------------------------------------------------
// PEX gossip state under a dark tracker tier
// ----------------------------------------------------------------------

/// A degradation-ladder swarm: PEX-enabled armed clients with announce
/// circuit breakers, a four-shard replica tracker tier, and one mobile
/// hand-off node. Snapshots of this world must carry gossip books,
/// per-entry ages, breaker states, and saved-address reseeds.
fn pex_world(seed: u64, scheduler: Scheduler) -> (FlowWorld, Vec<TaskKey>) {
    let meta = Metainfo::synthetic("pexsnap.bin", "tr", 256 * 1024, 16 * MB, seed);
    let torrent = TorrentSpec::from_metainfo(&meta, 256 * 1024);
    let cfg = FlowConfig {
        scheduler,
        tracker: TrackerConfig {
            announce_interval: secs(30),
            min_interval: secs(15),
            max_peers_returned: 2,
            ..TrackerConfig::default()
        },
        tracker_shards: 4,
        tracker_replicas: true,
        ..FlowConfig::default()
    };
    let mut w = FlowWorld::new(cfg, seed);
    let pexed = || {
        Box::new(|| ClientConfig {
            resilience: ResilienceConfig {
                breaker_threshold: 2,
                breaker_cooloff: secs(90),
                ..ResilienceConfig::armed()
            },
            pex: PexConfig {
                enabled: true,
                gossip_interval: secs(15),
                max_entries: 8,
                max_age: secs(240),
            },
            ..ClientConfig::default()
        }) as Box<dyn Fn() -> ClientConfig>
    };
    let seed_node = w.add_node(Access::campus());
    let mut seed_spec = TaskSpec::default_client(seed_node, torrent, true);
    seed_spec.make_config = pexed();
    let mut tasks = vec![w.add_task(seed_spec)];
    for i in 0..2 {
        let n = w.add_node(Access::residential());
        let mut spec = TaskSpec::default_client(n, torrent, false);
        spec.make_config = pexed();
        spec.start_fraction = Some(0.25 * (i + 1) as f64);
        tasks.push(w.add_task(spec));
    }
    let mobile = w.add_node(Access::Wireless {
        capacity: 2_000_000.0 / 8.0,
    });
    let mut mspec = TaskSpec::default_client(mobile, torrent, false);
    mspec.make_config = pexed();
    tasks.push(w.add_task(mspec));
    w.set_mobility(mobile, MobilityProcess::periodic(secs(25), secs(4)));
    w.start();
    (w, tasks)
}

/// Snapshot while the whole tracker tier is dark and PEX gossip is the
/// only discovery channel: breakers open, gossip books populated, the
/// mobile node mid-hand-off-cycle. The restored run must continue all
/// three rungs of the ladder byte-identically.
fn assert_pex_blackout_differential(scheduler: Scheduler) {
    let plan = {
        let mut p = FaultPlan::empty(17);
        p.push(at(15), FaultKind::TrackerOutage { duration: secs(300) });
        p
    };
    // Straight arm: run into the blackout, snapshot, keep going.
    let (mut straight, tasks) = pex_world(17, scheduler);
    let mut inj = FaultInjector::new(&plan);
    straight.run_driven_until(
        at(100),
        |w| {
            inj.poll(w);
        },
        |_| false,
    );
    assert!(straight.tracker_is_down(), "snapshot must land mid-blackout");
    let gossiped: u64 = tasks.iter().map(|&t| straight.task_pex_stats(t).0).sum();
    assert!(gossiped > 0, "PEX gossip must be active at the snapshot instant");
    assert!(
        tasks
            .iter()
            .any(|&t| straight.client(t).is_some_and(|c| c.breaker_is_open())),
        "at least one announce breaker must be open at the snapshot instant"
    );
    let blob = straight.save();
    let applied = inj.applied();
    straight.run_driven_until(
        at(170),
        |w| {
            inj.poll(w);
        },
        |_| false,
    );
    let want = straight.save();
    // Restored arm.
    let (mut restored, _tasks) = pex_world(17, scheduler);
    restored.restore(&blob);
    assert!(
        restored.save() == blob,
        "mid-blackout PEX snapshot is not a round-trip fixed point"
    );
    let mut inj2 = FaultInjector::new(&plan);
    inj2.skip_to(applied);
    restored.run_driven_until(
        at(170),
        |w| {
            inj2.poll(w);
        },
        |_| false,
    );
    let got = restored.save();
    assert!(
        want == got,
        "mid-blackout PEX restore diverged from straight run"
    );
    assert_eq!(straight.queue_stats(), restored.queue_stats());
    assert_eq!(straight.solver_stats(), restored.solver_stats());
}

#[test]
fn flow_pex_snapshot_mid_blackout_heap() {
    assert_pex_blackout_differential(Scheduler::Heap);
}

#[test]
fn flow_pex_snapshot_mid_blackout_wheel() {
    assert_pex_blackout_differential(Scheduler::Wheel);
}

// ----------------------------------------------------------------------
// Packet-world scenarios
// ----------------------------------------------------------------------

fn packet_raw_world(scheduler: Scheduler, seed: u64) -> PacketWorld {
    let cfg = PacketConfig {
        scheduler,
        ..PacketConfig::default()
    };
    let mut w = PacketWorld::new(cfg, seed);
    let a = w.add_node(None);
    let b = w.add_node(Some(WirelessConfig::wlan_80211g()));
    let conn = w.open_tcp(a, b);
    w.tcp_write(conn, true, 4 * MB);
    w.tcp_write(conn, false, 256 * 1024);
    w
}

fn packet_overlay_world(scheduler: Scheduler, seed: u64) -> PacketWorld {
    let meta = Metainfo::synthetic("psnap.bin", "tr", 64 * 1024, 2 * MB, seed);
    let ih = meta.info.info_hash();
    let cfg = PacketConfig {
        scheduler,
        ..PacketConfig::default()
    };
    let mut w = PacketWorld::new(cfg, seed);
    let seeder = w.add_node(None);
    let leech = w.add_node(Some(WirelessConfig::wlan_80211g()));
    w.add_client(
        seeder,
        ClientConfig::default(),
        ih,
        meta.info.piece_length,
        meta.info.length,
        16 * 1024,
        true,
    );
    w.add_client(
        leech,
        ClientConfig::default(),
        ih,
        meta.info.piece_length,
        meta.info.length,
        16 * 1024,
        false,
    );
    w.start_clients();
    w
}

fn assert_packet_differential(
    build: impl Fn() -> PacketWorld,
    t1: SimTime,
    t2: SimTime,
) {
    let mut straight = build();
    straight.run_until(t1, |_| {});
    let blob = straight.save();
    straight.run_until(t2, |_| {});
    let want = straight.save();

    let mut restored = build();
    restored.restore(&blob);
    restored.run_until(t2, |_| {});
    let got = restored.save();

    assert!(
        want == got,
        "packet-world restore-then-run diverged from straight run"
    );
    assert_eq!(straight.queue_stats(), restored.queue_stats());
    assert_eq!(straight.events_processed(), restored.events_processed());
}

#[test]
fn packet_raw_tcp_restore_is_byte_identical_heap() {
    assert_packet_differential(
        || packet_raw_world(Scheduler::Heap, 5),
        SimTime::from_millis(2_517),
        at(12),
    );
}

#[test]
fn packet_raw_tcp_restore_is_byte_identical_wheel() {
    assert_packet_differential(
        || packet_raw_world(Scheduler::Wheel, 5),
        SimTime::from_millis(2_517),
        at(12),
    );
}

#[test]
fn packet_overlay_restore_is_byte_identical() {
    assert_packet_differential(
        || packet_overlay_world(Scheduler::Wheel, 9),
        at(20),
        at(60),
    );
}

/// Packet world mid-fault snapshot: black hole open at snapshot time.
#[test]
fn packet_snapshot_mid_blackhole() {
    let plan = {
        let mut p = FaultPlan::empty(4);
        p.push(
            at(5),
            FaultKind::LinkBlackhole {
                node: NodeId(1),
                duration: secs(10),
            },
        );
        p
    };
    let build = || packet_overlay_world(Scheduler::Wheel, 4);
    let mut straight = build();
    let mut inj = FaultInjector::new(&plan);
    straight.run_until(at(8), |w| {
        inj.poll(w);
    });
    let blob = straight.save();
    let applied = inj.applied();
    straight.run_until(at(40), |w| {
        inj.poll(w);
    });
    let want = straight.save();

    let mut restored = build();
    restored.restore(&blob);
    let mut inj2 = FaultInjector::new(&plan);
    inj2.skip_to(applied);
    restored.run_until(at(40), |w| {
        inj2.poll(w);
    });
    let got = restored.save();
    assert!(
        want == got,
        "packet mid-blackhole restore diverged from straight run"
    );
}

/// Packet-world overlay with PEX + breakers on both clients, for the
/// dark-tier snapshot variant below.
fn packet_pex_world(scheduler: Scheduler, seed: u64) -> PacketWorld {
    let meta = Metainfo::synthetic("ppexsnap.bin", "tr", 64 * 1024, 2 * MB, seed);
    let ih = meta.info.info_hash();
    let cfg = PacketConfig {
        scheduler,
        ..PacketConfig::default()
    };
    let mut w = PacketWorld::new(cfg, seed);
    let pexed = || ClientConfig {
        resilience: ResilienceConfig {
            breaker_threshold: 2,
            breaker_cooloff: secs(90),
            ..ResilienceConfig::armed()
        },
        pex: PexConfig {
            enabled: true,
            gossip_interval: secs(10),
            max_entries: 8,
            max_age: secs(240),
        },
        ..ClientConfig::default()
    };
    let seeder = w.add_node(None);
    let leech = w.add_node(Some(WirelessConfig::wlan_80211g()));
    w.add_client(
        seeder,
        pexed(),
        ih,
        meta.info.piece_length,
        meta.info.length,
        16 * 1024,
        true,
    );
    w.add_client(
        leech,
        pexed(),
        ih,
        meta.info.piece_length,
        meta.info.length,
        16 * 1024,
        false,
    );
    w.start_clients();
    w
}

/// Packet-world dark-tier snapshot: the tracker outage is open and PEX
/// gossip timers are mid-cycle when the blob is taken.
fn assert_packet_pex_blackout_differential(scheduler: Scheduler) {
    let plan = {
        let mut p = FaultPlan::empty(6);
        p.push(at(5), FaultKind::TrackerOutage { duration: secs(120) });
        p
    };
    let build = || packet_pex_world(scheduler, 21);
    let mut straight = build();
    let mut inj = FaultInjector::new(&plan);
    straight.run_until(at(25), |w| {
        inj.poll(w);
    });
    assert!(straight.tracker_is_down(), "snapshot must land mid-blackout");
    let blob = straight.save();
    let applied = inj.applied();
    straight.run_until(at(70), |w| {
        inj.poll(w);
    });
    let want = straight.save();

    let mut restored = build();
    restored.restore(&blob);
    assert!(
        restored.save() == blob,
        "packet mid-blackout PEX snapshot is not a round-trip fixed point"
    );
    let mut inj2 = FaultInjector::new(&plan);
    inj2.skip_to(applied);
    restored.run_until(at(70), |w| {
        inj2.poll(w);
    });
    assert!(
        restored.save() == want,
        "packet mid-blackout PEX restore diverged from straight run"
    );
    assert_eq!(straight.queue_stats(), restored.queue_stats());
}

#[test]
fn packet_pex_snapshot_mid_blackout_heap() {
    assert_packet_pex_blackout_differential(Scheduler::Heap);
}

#[test]
fn packet_pex_snapshot_mid_blackout_wheel() {
    assert_packet_pex_blackout_differential(Scheduler::Wheel);
}

// ----------------------------------------------------------------------
// Round-trip stability and metrics
// ----------------------------------------------------------------------

/// `restore(save(restore(save(w))))` is a fixed point: double round-trip
/// produces the same blob as a single one.
#[test]
fn flow_double_round_trip_is_stable() {
    let build = || fig3b_world(31, Scheduler::Wheel, SolverMode::Incremental);
    let mut w = build();
    w.run_until(at(35), |_| {});
    let b1 = w.save();
    let mut w2 = build();
    w2.restore(&b1);
    let b2 = w2.save();
    assert!(b1 == b2, "save(restore(save)) changed the blob");
    let mut w3 = build();
    w3.restore(&b2);
    let b3 = w3.save();
    assert!(b2 == b3, "double round-trip is not a fixed point");
}

#[test]
fn packet_double_round_trip_is_stable() {
    let build = || packet_overlay_world(Scheduler::Heap, 13);
    let mut w = build();
    w.run_until(at(15), |_| {});
    let b1 = w.save();
    let mut w2 = build();
    w2.restore(&b1);
    let b2 = w2.save();
    assert!(b1 == b2, "packet save(restore(save)) changed the blob");
}

/// Restoring with metrics enabled restores every registry instrument by
/// name: the restored run's metrics series match the straight run's.
#[test]
fn flow_metrics_series_survive_restore() {
    use metrics::handle::MetricsHandle;
    let build = |m: &MetricsHandle| {
        let meta = Metainfo::synthetic("msnap.bin", "tr", 256 * 1024, 8 * MB, 2);
        let torrent = TorrentSpec::from_metainfo(&meta, 256 * 1024);
        let cfg = FlowConfig {
            scheduler: Scheduler::Wheel,
            ..FlowConfig::default()
        };
        let mut w = FlowWorld::new(cfg, 2);
        w.set_metrics(m);
        let s = w.add_node(Access::campus());
        w.add_task(TaskSpec::default_client(s, torrent, true));
        let l = w.add_node(Access::residential());
        w.add_task(TaskSpec::default_client(l, torrent, false));
        w.start();
        w
    };
    let ma = MetricsHandle::enabled(2);
    let mut straight = build(&ma);
    straight.run_until(at(25), |_| {});
    let blob = straight.save();
    straight.run_until(at(60), |_| {});

    let mb = MetricsHandle::enabled(2);
    let mut restored = build(&mb);
    restored.restore(&blob);
    restored.run_until(at(60), |_| {});

    assert_eq!(
        ma.to_json(),
        mb.to_json(),
        "metrics registries diverged after restore"
    );
    assert_eq!(ma.series_csv(), mb.series_csv());
    assert!(straight.save() == restored.save());
}

// ----------------------------------------------------------------------
// Seeded property tests: random snapshot points under randomized churn
// ----------------------------------------------------------------------

/// Each case draws a generated fault plan and a uniformly random
/// snapshot instant (microsecond granularity, deliberately unaligned
/// with ticks or wheel slots), then requires the restored arm to agree
/// byte-for-byte with the straight arm — and the snapshot itself to be
/// a round-trip fixed point. Failures reproduce from the printed case
/// index alone.
#[test]
fn flow_random_snapshot_points_under_randomized_churn() {
    let root = SimRng::new(0x5A7_F00D);
    for case in 0..5u64 {
        let mut rng = root.fork(case);
        let scheduler = if rng.chance(0.5) {
            Scheduler::Heap
        } else {
            Scheduler::Wheel
        };
        let (mut straight, _tasks) = armed_world(100 + case, scheduler);
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let plan = FaultPlan::generate(
            case,
            &FaultPlanConfig::new(secs(100), nodes),
        );
        let horizon = at(120);
        let t_snap = SimTime::from_micros(rng.range(5_000_000..100_000_000u64));

        let mut inj = FaultInjector::new(&plan);
        straight.run_driven_until(
            t_snap,
            |w| {
                inj.poll(w);
            },
            |_| false,
        );
        let blob = straight.save();
        let applied = inj.applied();
        straight.run_driven_until(
            horizon,
            |w| {
                inj.poll(w);
            },
            |_| false,
        );
        let want = straight.save();
        let straight_solver = straight.solver_stats();
        let straight_queue = straight.queue_stats();

        let (mut restored, _tasks) = armed_world(100 + case, scheduler);
        restored.restore(&blob);
        // Round-trip fixed point at the snapshot instant.
        assert!(
            restored.save() == blob,
            "case {case}: save(restore(blob)) != blob at t={t_snap:?}"
        );
        let mut inj2 = FaultInjector::new(&plan);
        inj2.skip_to(applied);
        restored.run_driven_until(
            horizon,
            |w| {
                inj2.poll(w);
            },
            |_| false,
        );
        let got = restored.save();
        assert!(
            want == got,
            "case {case}: random snapshot at {t_snap:?} under plan\n{}\ndiverged",
            plan.render()
        );
        assert_eq!(straight_solver, restored.solver_stats(), "case {case}");
        assert_eq!(straight_queue, restored.queue_stats(), "case {case}");
        assert_eq!(inj.applied(), inj2.applied(), "case {case}");
    }
}

/// Packet-world variant: random snapshot instants over the BT overlay
/// with the two scheduler backends chosen per case.
#[test]
fn packet_random_snapshot_points() {
    let root = SimRng::new(0x9AC4E7);
    for case in 0..4u64 {
        let mut rng = root.fork(case);
        let scheduler = if rng.chance(0.5) {
            Scheduler::Heap
        } else {
            Scheduler::Wheel
        };
        let build = || packet_overlay_world(scheduler, 200 + case);
        let t_snap = SimTime::from_micros(rng.range(2_000_000..40_000_000u64));
        let horizon = at(55);

        let mut straight = build();
        straight.run_until(t_snap, |_| {});
        let blob = straight.save();
        straight.run_until(horizon, |_| {});
        let want = straight.save();

        let mut restored = build();
        restored.restore(&blob);
        assert!(
            restored.save() == blob,
            "case {case}: packet save(restore(blob)) != blob"
        );
        restored.run_until(horizon, |_| {});
        assert!(
            restored.save() == want,
            "case {case}: packet random snapshot at {t_snap:?} diverged"
        );
        assert_eq!(straight.queue_stats(), restored.queue_stats(), "case {case}");
    }
}
