//! Cross-crate end-to-end scenarios: whole wP2P-vs-default stories run
//! through the public APIs of every crate at once.

use bittorrent::client::ClientConfig;
use bittorrent::metainfo::Metainfo;
use media_model::playable_fraction;
use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskSpec, TorrentSpec};
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use wp2p::config::WP2pConfig;

const MB: u64 = 1024 * 1024;

fn spec(len: u64, seed: u64) -> TorrentSpec {
    let meta = Metainfo::synthetic("e2e.bin", "tr", 256 * 1024, len, seed);
    TorrentSpec::from_metainfo(&meta, 256 * 1024)
}

/// The full wP2P client is at least as good as the default under roaming,
/// and leaves a dramatically more playable prefix.
#[test]
fn full_wp2p_stack_beats_default_under_roaming() {
    let run = |wp2p: bool| -> (u64, f64) {
        let capacity = 250_000.0;
        let torrent = spec(128 * MB, 3);
        let mut cfg = FlowConfig::default();
        cfg.tracker.announce_interval = SimDuration::from_secs(300);
        let mut w = FlowWorld::new(cfg, 17);
        let seed_node = w.add_node(Access::Wired {
            up: 150_000.0,
            down: 500_000.0,
        });
        w.add_task(TaskSpec::default_client(seed_node, torrent, true));
        for _ in 0..5 {
            let n = w.add_node(Access::residential());
            w.add_task(TaskSpec::default_client(n, torrent, false));
        }
        let laptop = w.add_node(Access::Wireless { capacity });
        let t = w.add_task(TaskSpec {
            node: laptop,
            torrent,
            start_complete: false,
            start_fraction: None,
            start_at: SimTime::ZERO,
            make_config: Box::new(ClientConfig::default),
            wp2p: if wp2p {
                WP2pConfig::full(capacity)
            } else {
                WP2pConfig::default_client()
            },
        });
        w.set_mobility(
            laptop,
            MobilityProcess::with_jitter(
                SimDuration::from_secs(90),
                SimDuration::from_secs(8),
                0.1,
            ),
        );
        w.start();
        w.run_until(SimTime::from_secs(600), |_| {});
        let playable = w.with_progress(t, |p| {
            playable_fraction(p.have(), torrent.piece_length, torrent.length)
        });
        (w.downloaded_bytes(t), playable)
    };
    let (default_bytes, default_playable) = run(false);
    let (wp2p_bytes, wp2p_playable) = run(true);
    assert!(
        wp2p_bytes as f64 >= 0.85 * default_bytes as f64,
        "wP2P should not lose data volume: {wp2p_bytes} vs {default_bytes}"
    );
    assert!(
        wp2p_playable > default_playable,
        "wP2P must leave a more playable prefix: {wp2p_playable} vs {default_playable}"
    );
}

/// A seed running the wP2P client serves a swarm just as well as the
/// default client when nothing moves — backward compatibility in the
/// sense the paper claims (fixed peers unaffected).
#[test]
fn wp2p_is_backward_compatible_when_stationary() {
    let run = |wp2p: bool| -> u64 {
        let torrent = spec(8 * MB, 4);
        let mut w = FlowWorld::new(FlowConfig::default(), 9);
        let sn = w.add_node(Access::campus());
        w.add_task(TaskSpec {
            node: sn,
            torrent,
            start_complete: true,
            start_fraction: None,
            start_at: SimTime::ZERO,
            make_config: Box::new(ClientConfig::default),
            wp2p: if wp2p {
                WP2pConfig::full(1_250_000.0)
            } else {
                WP2pConfig::default_client()
            },
        });
        let ln = w.add_node(Access::residential());
        let t = w.add_task(TaskSpec::default_client(ln, torrent, false));
        w.start();
        w.run_until(SimTime::from_secs(180), |_| {});
        w.downloaded_bytes(t)
    };
    let with_default_seed = run(false);
    let with_wp2p_seed = run(true);
    assert_eq!(
        with_default_seed,
        8 * MB,
        "default-seeded download completes"
    );
    // LIHD caps the seed's upload but the channel is wired and fast; the
    // leech still completes.
    assert_eq!(with_wp2p_seed, 8 * MB, "wP2P-seeded download completes");
}

/// Two flow worlds with the same seed agree bit-for-bit on every metric
/// we expose — across mobility, wP2P components, and swarm dynamics.
#[test]
fn whole_world_determinism_with_all_features() {
    let run = || -> Vec<u64> {
        let capacity = 200_000.0;
        let torrent = spec(32 * MB, 5);
        let mut w = FlowWorld::new(FlowConfig::default(), 31);
        let sn = w.add_node(Access::campus());
        w.add_task(TaskSpec::default_client(sn, torrent, true));
        for _ in 0..3 {
            let n = w.add_node(Access::residential());
            w.add_task(TaskSpec::default_client(n, torrent, false));
        }
        let m = w.add_node(Access::Wireless { capacity });
        let t = w.add_task(TaskSpec {
            node: m,
            torrent,
            start_complete: false,
            start_fraction: None,
            start_at: SimTime::ZERO,
            make_config: Box::new(ClientConfig::default),
            wp2p: WP2pConfig::full(capacity),
        });
        w.set_mobility(
            m,
            MobilityProcess::with_jitter(
                SimDuration::from_secs(60),
                SimDuration::from_secs(5),
                0.2,
            ),
        );
        w.start();
        w.run_until(SimTime::from_secs(300), |_| {});
        let mut out = vec![
            w.downloaded_bytes(t),
            w.delivered_up_bytes(t),
            w.connection_count(t) as u64,
        ];
        out.extend(
            w.download_series(t)
                .points()
                .iter()
                .map(|&(ts, v)| ts.as_micros() ^ (v as u64)),
        );
        out
    };
    assert_eq!(run(), run());
}

/// The paper's headline qualitative claim, end to end: on a shared
/// wireless channel that actually binds (capacity below the swarm's
/// supply), capping uploads (LIHD) downloads more than serving flat out.
/// Uses the calibrated Fig. 8(c) driver across crate boundaries.
#[test]
fn lihd_outperforms_uncapped_on_contended_channel() {
    use metrics::handle::MetricsHandle;
    use p2p_simulation::experiments::fig8::{run_fig8c_with, Fig8cParams, FIG8C_SEED};
    let params = Fig8cParams {
        capacities: vec![40.0 * 1024.0],
        ..Fig8cParams::quick()
    };
    let pts = run_fig8c_with(&params, &MetricsHandle::disabled(), FIG8C_SEED);
    let p = &pts[0];
    assert!(
        p.wp2p.mean > 1.1 * p.default.mean,
        "LIHD should win on a binding channel: capped={} uncapped={}",
        p.wp2p.mean,
        p.default.mean
    );
}
