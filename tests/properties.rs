//! Property-based tests across the workspace's core data structures and
//! invariants.
//!
//! Cases are generated from [`SimRng`] streams rather than an external
//! property-testing crate (the workspace builds fully offline): each test
//! runs a few hundred randomized cases from a fixed seed, so failures are
//! reproducible — re-run with the printed case seed to shrink by hand.

use bittorrent::bencode::Value;
use bittorrent::bitfield::Bitfield;
use bittorrent::progress::TorrentProgress;
use bittorrent::rate::TokenBucket;
use media_model::playable_fraction;
use p2p_simulation::rates::{max_min_rates, FlowDemand};
use sim_tcp::reasm::Reassembly;
use sim_tcp::seq::SeqNum;
use simnet::event::EventQueue;
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};

/// Runs `cases` randomized cases; each gets an independent RNG stream so
/// a failing case replays from `base_seed` and its index alone.
fn for_cases(base_seed: u64, cases: u64, mut f: impl FnMut(&mut SimRng)) {
    let root = SimRng::new(base_seed);
    for case in 0..cases {
        let mut rng = root.fork(case);
        f(&mut rng);
    }
}

fn random_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.range(0..=max_len);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

// ---------------------------------------------------------------------
// Bencode
// ---------------------------------------------------------------------

/// Arbitrary bencode value with bounded depth.
fn bencode_value(rng: &mut SimRng, depth: u32) -> Value {
    let choices = if depth == 0 { 2 } else { 4 };
    match rng.range(0..choices) {
        0 => Value::Int(rng.next_u64() as i64),
        1 => Value::Bytes(random_bytes(rng, 64)),
        2 => {
            let n = rng.range(0..6usize);
            Value::List((0..n).map(|_| bencode_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.range(0..6usize);
            Value::Dict(
                (0..n)
                    .map(|_| (random_bytes(rng, 12), bencode_value(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn bencode_roundtrips() {
    for_cases(0xB3C0DE, 256, |rng| {
        let v = bencode_value(rng, 3);
        let encoded = v.encode();
        let decoded = Value::decode(&encoded).expect("own encoding decodes");
        assert_eq!(decoded, v);
    });
}

#[test]
fn bencode_decoder_never_panics() {
    for_cases(0xB3C0DF, 512, |rng| {
        // Any input: decode returns Ok or Err, never panics.
        let _ = Value::decode(&random_bytes(rng, 256));
    });
}

// ---------------------------------------------------------------------
// Bitfield
// ---------------------------------------------------------------------

#[test]
fn bitfield_set_get_roundtrip() {
    for_cases(0xB17F, 256, |rng| {
        let len = rng.range(1u32..512);
        let mut bf = Bitfield::new(len);
        let mut expected = std::collections::BTreeSet::new();
        for _ in 0..rng.range(0..64usize) {
            let i = rng.range(0..u32::MAX) % len;
            bf.set(i);
            expected.insert(i);
        }
        assert_eq!(bf.count() as usize, expected.len());
        assert_eq!(
            bf.iter_set().collect::<Vec<_>>(),
            expected.iter().copied().collect::<Vec<_>>()
        );
        // Wire round-trip preserves everything.
        let back = Bitfield::from_bytes(bf.as_bytes(), len).expect("own bytes parse");
        assert_eq!(back, bf);
    });
}

// ---------------------------------------------------------------------
// TCP reassembly
// ---------------------------------------------------------------------

/// Any permutation of any segmentation delivers the exact stream.
#[test]
fn reassembly_delivers_exact_stream() {
    for_cases(0x7C9, 256, |rng| {
        let n_segs = rng.range(1..40usize);
        let seg_lens: Vec<u32> = (0..n_segs).map(|_| rng.range(1u32..2000)).collect();
        let initial = rng.range(0..u32::MAX);
        let total: u64 = seg_lens.iter().map(|&l| l as u64).sum();
        // Build (offset, len) segments then shuffle.
        let mut segs = Vec::new();
        let mut off = 0u32;
        for &l in &seg_lens {
            segs.push((off, l));
            off = off.wrapping_add(l);
        }
        rng.shuffle(&mut segs);
        let mut r = Reassembly::new(SeqNum(initial));
        let mut delivered = 0u64;
        for (o, l) in segs {
            delivered += r.on_data(SeqNum(initial.wrapping_add(o)), l).delivered;
        }
        assert_eq!(delivered, total);
        assert_eq!(r.delivered_total(), total);
        assert_eq!(r.rcv_nxt(), SeqNum(initial.wrapping_add(total as u32)));
        assert_eq!(r.buffered_ooo(), 0);
    });
}

/// Chaos: random overlapping / out-of-order / duplicate / stale segments
/// interleaved with a full cover never corrupt the stream — exactly the
/// original bytes are delivered, in order, and nothing is left buffered.
#[test]
fn reassembly_survives_overlapping_chaos() {
    for_cases(0x7CB, 256, |rng| {
        let total = rng.range(1u32..50_000);
        let initial = rng.range(0..u32::MAX); // wrap point lands anywhere
                                              // A covering segmentation of [0, total)...
        let mut segs: Vec<(u32, u32)> = Vec::new();
        let mut off = 0u32;
        while off < total {
            let l = rng.range(1u32..3000).min(total - off);
            segs.push((off, l));
            off += l;
        }
        // ...plus random junk: overlapping ranges, duplicates, stale
        // retransmissions of data already covered.
        for _ in 0..rng.range(0..40usize) {
            let o = rng.range(0..total);
            let l = rng.range(1u32..3000).min(total - o);
            segs.push((o, l));
        }
        rng.shuffle(&mut segs);
        let mut r = Reassembly::new(SeqNum(initial));
        let mut delivered = 0u64;
        for (o, l) in segs {
            let out = r.on_data(SeqNum(initial.wrapping_add(o)), l);
            delivered += out.delivered;
            assert!(
                r.delivered_total() <= total as u64,
                "delivered more bytes than the stream holds"
            );
            // rcv_nxt always tracks the delivered prefix exactly.
            assert_eq!(
                r.rcv_nxt(),
                SeqNum(initial.wrapping_add(r.delivered_total() as u32))
            );
        }
        assert_eq!(delivered, total as u64, "stream incomplete or inflated");
        assert_eq!(r.delivered_total(), total as u64);
        assert_eq!(r.buffered_ooo(), 0, "junk left buffered past delivery");
    });
}

/// Duplicated segments never inflate the delivered byte count.
#[test]
fn reassembly_ignores_duplicates() {
    for_cases(0x7CA, 128, |rng| {
        let n_segs = rng.range(1..20usize);
        let seg_lens: Vec<u32> = (0..n_segs).map(|_| rng.range(1u32..500)).collect();
        let dup_factor = rng.range(1usize..4);
        let total: u64 = seg_lens.iter().map(|&l| l as u64).sum();
        let mut r = Reassembly::new(SeqNum(0));
        let mut segs = Vec::new();
        let mut off = 0u32;
        for &l in &seg_lens {
            for _ in 0..dup_factor {
                segs.push((off, l));
            }
            off += l;
        }
        let mut delivered = 0u64;
        for (o, l) in segs {
            delivered += r.on_data(SeqNum(o), l).delivered;
        }
        assert_eq!(delivered, total);
    });
}

// ---------------------------------------------------------------------
// Sequence-number arithmetic
// ---------------------------------------------------------------------

/// Wrapping sequence arithmetic is consistent for any anchor (including
/// right at the 2³² wrap) and any in-window distance: ordering, distance,
/// min/max, and add all agree.
#[test]
fn seqnum_wraparound_arithmetic_is_consistent() {
    for_cases(0x5E9, 512, |rng| {
        // Half the cases anchor within one window of the wrap point so
        // the wrap is actually exercised, not just possible.
        let a = if rng.chance(0.5) {
            SeqNum(u32::MAX - rng.range(0u32..1 << 20))
        } else {
            SeqNum(rng.range(0..u32::MAX))
        };
        let d = rng.range(1u32..1 << 30); // strictly in-window distance
        let b = a.add(d);
        assert!(a.before(b), "a must be before a+{d}");
        assert!(b.after(a));
        assert!(a.before_eq(b) && a.before_eq(a) && !a.before(a));
        assert_eq!(a.distance_to(b), d, "distance must survive the wrap");
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        // Adding the two's-complement of d walks back to a.
        assert_eq!(b.add(d.wrapping_neg()), a);
        // Ordering is antisymmetric for distinct in-window points.
        assert!(!b.before(a));
    });
}

// ---------------------------------------------------------------------
// Token bucket
// ---------------------------------------------------------------------

/// Long-run admitted volume never exceeds rate·time + burst.
#[test]
fn token_bucket_conserves() {
    for_cases(0x70CB, 256, |rng| {
        let rate = rng.range(100.0f64..100_000.0);
        let burst = rate * rng.range(1.0f64..5.0);
        let mut tb = TokenBucket::new(Some(rate), burst);
        let mut t = SimTime::ZERO;
        let mut admitted = 0u64;
        let mut horizon = SimTime::ZERO;
        for _ in 0..rng.range(1..200usize) {
            t += SimDuration::from_millis(rng.range(0u64..5_000));
            let bytes = rng.range(1u64..10_000);
            horizon = t;
            if tb.try_consume(t, bytes) {
                admitted += bytes;
            }
        }
        let bound = rate * horizon.as_secs_f64() + burst
            // Debt admission can overshoot by one payload.
            + 10_000.0;
        assert!(
            admitted as f64 <= bound,
            "admitted {admitted} > bound {bound}"
        );
    });
}

// ---------------------------------------------------------------------
// Playability
// ---------------------------------------------------------------------

/// Playability is monotone under adding pieces and bounded by the
/// downloaded fraction.
#[test]
fn playability_monotone_and_bounded() {
    for_cases(0x97AB, 128, |rng| {
        let n = rng.range(1u32..128);
        let piece = 1000u32;
        let length = n as u64 * piece as u64 - 137.min(n as u64 * piece as u64 - 1); // short last piece
        let mut bf = Bitfield::new(n);
        let mut last = 0.0f64;
        for _ in 0..rng.range(1..128usize) {
            bf.set(rng.range(0..u32::MAX) % n);
            let p = playable_fraction(&bf, piece, length);
            let downloaded: u64 = bf
                .iter_set()
                .map(|ix| {
                    let start = ix as u64 * piece as u64;
                    (start + piece as u64).min(length) - start
                })
                .sum();
            let dl_frac = downloaded as f64 / length as f64;
            assert!(p >= last - 1e-12, "monotone violated");
            assert!(p <= dl_frac + 1e-12, "playable beyond downloaded");
            last = p;
        }
    });
}

// ---------------------------------------------------------------------
// Max-min fairness
// ---------------------------------------------------------------------

/// No resource is oversubscribed, and every flow with spare capacity
/// everywhere it travels is not starved.
#[test]
fn max_min_feasible_and_work_conserving() {
    for_cases(0x3A53, 512, |rng| {
        let n_res = rng.range(1usize..10);
        let caps: Vec<f64> = (0..n_res).map(|_| rng.range(1.0f64..1_000.0)).collect();
        let n_flows = rng.range(1..40usize);
        let flows: Vec<FlowDemand> = (0..n_flows)
            .map(|_| FlowDemand::new(rng.range(0..n_res), rng.range(0..n_res)))
            .collect();
        let rates = max_min_rates(&flows, &caps);
        assert_eq!(rates.len(), flows.len());
        let mut used = vec![0.0f64; n_res];
        for (f, r) in flows.iter().zip(&rates) {
            assert!(*r >= 0.0);
            used[f.r1] += r;
            if let Some(r2) = f.r2 {
                used[r2] += r;
            }
            if let Some(r3) = f.r3 {
                used[r3] += r;
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            assert!(*u <= c * (1.0 + 1e-9) + 1e-9, "oversubscribed: {u} > {c}");
        }
        // Every flow is frozen by some saturated resource.
        for (f, r) in flows.iter().zip(&rates) {
            let saturated = [Some(f.r1), f.r2, f.r3]
                .into_iter()
                .flatten()
                .any(|res| used[res] >= caps[res] * (1.0 - 1e-6));
            assert!(saturated || *r > 0.0, "flow starved with spare capacity");
        }
    });
}

// ---------------------------------------------------------------------
// Event queue ordering
// ---------------------------------------------------------------------

#[test]
fn event_queue_pops_in_time_then_fifo_order() {
    for_cases(0xE0E0, 256, |rng| {
        let mut q = EventQueue::new();
        for i in 0..rng.range(1..200usize) {
            q.schedule_at(SimTime::from_micros(rng.range(0u64..1_000)), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt, "time went backwards");
                if t == lt {
                    assert!(i > li, "FIFO tie-break violated");
                }
            }
            last = Some((t, i));
        }
    });
}

// ---------------------------------------------------------------------
// Torrent progress
// ---------------------------------------------------------------------

/// Receiving every block exactly once completes the torrent, no matter
/// the interleaving across connections.
#[test]
fn progress_completes_under_any_interleaving() {
    for_cases(0x9409, 128, |rng| {
        let pieces = rng.range(1u32..20);
        let block = 16u32;
        let piece_len = rng.range(1u32..8) * block;
        let length = (pieces as u64 * piece_len as u64).saturating_sub(5).max(1);
        let mut p = TorrentProgress::with_block_size(piece_len, length, block);
        let mut blocks = Vec::new();
        for piece in 0..p.num_pieces() {
            for b in 0..p.blocks_in_piece(piece) {
                blocks.push(p.block_ref(piece, b));
            }
        }
        rng.shuffle(&mut blocks);
        let mut completed = 0u32;
        for (i, b) in blocks.iter().enumerate() {
            match p.on_block(*b, (i % 3) as u64) {
                bittorrent::progress::BlockOutcome::Progress { completed_piece } => {
                    if completed_piece.is_some() {
                        completed += 1;
                    }
                }
                bittorrent::progress::BlockOutcome::Duplicate => {
                    panic!("no duplicates were sent");
                }
            }
        }
        assert_eq!(completed, p.num_pieces());
        assert!(p.is_complete());
        assert_eq!(p.bytes_downloaded(), length);
    });
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

/// Arbitrary non-handshake wire message (with payload for `Piece`).
fn wire_message(rng: &mut SimRng) -> (bittorrent::wire::Message, Option<Vec<u8>>) {
    use bittorrent::wire::{BlockRef, Message};
    let block = |rng: &mut SimRng| BlockRef {
        piece: rng.range(0..u32::MAX),
        offset: rng.range(0..u32::MAX),
        len: rng.range(1u32..64),
    };
    match rng.range(0..10u32) {
        0 => (Message::KeepAlive, None),
        1 => (Message::Choke, None),
        2 => (Message::Unchoke, None),
        3 => (Message::Interested, None),
        4 => (Message::NotInterested, None),
        5 => (
            Message::Have {
                index: rng.range(0..u32::MAX),
            },
            None,
        ),
        6 => {
            let len = rng.range(1u32..64);
            let bits = rng.next_u64();
            let mut bf = Bitfield::new(len);
            for i in 0..len {
                if bits & (1 << (i % 64)) != 0 {
                    bf.set(i);
                }
            }
            (Message::Bitfield(bf), None)
        }
        7 => (Message::Request(block(rng)), None),
        8 => (Message::Cancel(block(rng)), None),
        _ => {
            let b = block(rng);
            let data = vec![0xAB; b.len as usize];
            (Message::Piece(b), Some(data))
        }
    }
}

/// encode → decode is the identity for every message, and the wire length
/// reported matches the encoded size.
#[test]
fn wire_codec_roundtrips() {
    for_cases(0x31C0, 512, |rng| {
        use bittorrent::wire::{decode, encode};
        let (msg, payload) = wire_message(rng);
        let num_pieces = match &msg {
            bittorrent::wire::Message::Bitfield(bf) => bf.len(),
            _ => 64,
        };
        let mut buf = Vec::new();
        encode(&msg, payload.as_deref(), &mut buf);
        assert_eq!(buf.len() as u32, msg.wire_len());
        let decoded = decode(&buf, num_pieces).unwrap().expect("complete message");
        assert_eq!(decoded.message, msg);
        assert_eq!(decoded.consumed, buf.len());
        if let (Some((s, e)), Some(data)) = (decoded.payload, payload) {
            assert_eq!(&buf[s..e], &data[..]);
        }
    });
}

/// The stream decoder never panics on arbitrary bytes.
#[test]
fn wire_decoder_never_panics() {
    for_cases(0x31C1, 512, |rng| {
        let n = rng.range(0u32..64);
        let _ = bittorrent::wire::decode(&random_bytes(rng, 128), n);
    });
}

// ---------------------------------------------------------------------
// Choker invariants
// ---------------------------------------------------------------------

/// The unchoke set never exceeds slots+1, never contains an uninterested
/// peer, and always includes the highest-credit interested peer.
#[test]
fn choker_invariants() {
    for_cases(0xC40E, 256, |rng| {
        use bittorrent::choker::{Choker, ChokerConfig, PeerSnapshot};
        let peers: Vec<PeerSnapshot> = (0..rng.range(0..30usize))
            .map(|k| PeerSnapshot {
                key: k as u64,
                interested: rng.chance(0.5),
                credit: rng.range(0.0f64..1e6),
            })
            .collect();
        let slots = rng.range(1usize..6);
        let mut ch = Choker::new(ChokerConfig {
            upload_slots: slots,
            ..ChokerConfig::default()
        });
        let mut rng2 = rng.fork(1);
        let d = ch.rechoke(SimTime::ZERO, &peers, &mut rng2);
        assert!(d.unchoked.len() <= slots + 1, "too many unchoked");
        for k in &d.unchoked {
            let p = peers.iter().find(|p| p.key == *k).expect("known peer");
            assert!(p.interested, "unchoked an uninterested peer");
        }
        // The top interested peer (if any) always gets a regular slot.
        if let Some(top) = peers
            .iter()
            .filter(|p| p.interested)
            .max_by(|a, b| a.credit.partial_cmp(&b.credit).unwrap())
        {
            assert!(d.unchoked.contains(&top.key), "top peer choked");
        }
        // No duplicates.
        let mut keys = d.unchoked.clone();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), d.unchoked.len());
    });
}

// ---------------------------------------------------------------------
// AM filter invariants
// ---------------------------------------------------------------------

/// The AM filter never drops anything that is not a DUPACK, never
/// reorders, and decoupled output always keeps the original data segment
/// intact.
#[test]
fn am_filter_never_harms_data() {
    for_cases(0xA3F1, 256, |rng| {
        use sim_tcp::segment::{SegFlags, Segment};
        use wp2p::am::{AgeFilter, AmConfig, AmOutput};
        let mut f = AgeFilter::new(AmConfig::default());
        let mut now = SimTime::ZERO;
        if rng.chance(0.5) {
            // Mature the connection.
            for i in 0..40u32 {
                f.on_incoming(
                    &Segment {
                        seq: SeqNum(i * 1460),
                        ack: SeqNum(0),
                        flags: SegFlags {
                            ack: true,
                            ..Default::default()
                        },
                        payload: 1460,
                        window: 65535,
                    },
                    now,
                );
                now += SimDuration::from_millis(5);
            }
        }
        for _ in 0..rng.range(1..60usize) {
            let seg = Segment {
                seq: SeqNum(rng.range(0..u32::MAX)),
                ack: SeqNum(rng.range(0..u32::MAX)),
                flags: SegFlags {
                    ack: true,
                    ..Default::default()
                },
                payload: rng.range(0u32..2000),
                window: 65535,
            };
            match f.on_outgoing(seg, now) {
                AmOutput::Pass(out) => assert_eq!(out, seg),
                AmOutput::Decoupled { pure_ack, data } => {
                    assert_eq!(data, seg, "data must pass unmodified");
                    assert!(pure_ack.is_pure_ack());
                    assert_eq!(pure_ack.ack, seg.ack);
                }
                AmOutput::Drop => {
                    // Only ever DUPACKs (pure acks) may be dropped.
                    assert!(seg.is_pure_ack(), "dropped a data segment!");
                }
            }
            now += SimDuration::from_millis(1);
        }
    });
}
