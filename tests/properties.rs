//! Property-based tests across the workspace's core data structures and
//! invariants.

use bittorrent::bencode::Value;
use bittorrent::bitfield::Bitfield;
use bittorrent::progress::TorrentProgress;
use bittorrent::rate::TokenBucket;
use media_model::playable_fraction;
use p2p_simulation::rates::{max_min_rates, FlowDemand};
use proptest::collection::vec;
use proptest::prelude::*;
use sim_tcp::reasm::Reassembly;
use sim_tcp::seq::SeqNum;
use simnet::event::EventQueue;
use simnet::time::{SimDuration, SimTime};

// ---------------------------------------------------------------------
// Bencode
// ---------------------------------------------------------------------

/// Recursive strategy for arbitrary bencode values.
fn bencode_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(3, 32, 8, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..6).prop_map(Value::List),
            vec((vec(any::<u8>(), 0..12), inner), 0..6).prop_map(|pairs| {
                Value::Dict(pairs.into_iter().collect())
            }),
        ]
    })
}

proptest! {
    #[test]
    fn bencode_roundtrips(v in bencode_value()) {
        let encoded = v.encode();
        let decoded = Value::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded, v);
    }

    #[test]
    fn bencode_decoder_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        // Any input: decode returns Ok or Err, never panics.
        let _ = Value::decode(&bytes);
    }
}

// ---------------------------------------------------------------------
// Bitfield
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn bitfield_set_get_roundtrip(len in 1u32..512, indices in vec(any::<u32>(), 0..64)) {
        let mut bf = Bitfield::new(len);
        let mut expected = std::collections::BTreeSet::new();
        for i in indices {
            let i = i % len;
            bf.set(i);
            expected.insert(i);
        }
        prop_assert_eq!(bf.count() as usize, expected.len());
        prop_assert_eq!(bf.iter_set().collect::<Vec<_>>(),
                        expected.iter().copied().collect::<Vec<_>>());
        // Wire round-trip preserves everything.
        let back = Bitfield::from_bytes(bf.as_bytes(), len).expect("own bytes parse");
        prop_assert_eq!(back, bf);
    }
}

// ---------------------------------------------------------------------
// TCP reassembly
// ---------------------------------------------------------------------

proptest! {
    /// Any permutation of any segmentation delivers the exact stream.
    #[test]
    fn reassembly_delivers_exact_stream(
        seg_lens in vec(1u32..2000, 1..40),
        seed in any::<u64>(),
        initial in any::<u32>(),
    ) {
        use simnet::rng::SimRng;
        let total: u64 = seg_lens.iter().map(|&l| l as u64).sum();
        // Build (offset, len) segments then shuffle.
        let mut segs = Vec::new();
        let mut off = 0u32;
        for &l in &seg_lens {
            segs.push((off, l));
            off = off.wrapping_add(l);
        }
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut segs);
        let mut r = Reassembly::new(SeqNum(initial));
        let mut delivered = 0u64;
        for (o, l) in segs {
            delivered += r.on_data(SeqNum(initial.wrapping_add(o)), l).delivered;
        }
        prop_assert_eq!(delivered, total);
        prop_assert_eq!(r.delivered_total(), total);
        prop_assert_eq!(r.rcv_nxt(), SeqNum(initial.wrapping_add(total as u32)));
        prop_assert_eq!(r.buffered_ooo(), 0);
    }

    /// Duplicated segments never inflate the delivered byte count.
    #[test]
    fn reassembly_ignores_duplicates(
        seg_lens in vec(1u32..500, 1..20),
        dup_factor in 1usize..4,
    ) {
        let total: u64 = seg_lens.iter().map(|&l| l as u64).sum();
        let mut r = Reassembly::new(SeqNum(0));
        let mut segs = Vec::new();
        let mut off = 0u32;
        for &l in &seg_lens {
            for _ in 0..dup_factor {
                segs.push((off, l));
            }
            off += l;
        }
        let mut delivered = 0u64;
        for (o, l) in segs {
            delivered += r.on_data(SeqNum(o), l).delivered;
        }
        prop_assert_eq!(delivered, total);
    }
}

// ---------------------------------------------------------------------
// Token bucket
// ---------------------------------------------------------------------

proptest! {
    /// Long-run admitted volume never exceeds rate·time + burst.
    #[test]
    fn token_bucket_conserves(
        rate in 100.0f64..100_000.0,
        burst_mult in 1.0f64..5.0,
        offers in vec((0u64..5_000, 1u64..10_000), 1..200),
    ) {
        let burst = rate * burst_mult;
        let mut tb = TokenBucket::new(Some(rate), burst);
        let mut t = SimTime::ZERO;
        let mut admitted = 0u64;
        let mut horizon = SimTime::ZERO;
        for (dt_ms, bytes) in offers {
            t += SimDuration::from_millis(dt_ms);
            horizon = t;
            if tb.try_consume(t, bytes) {
                admitted += bytes;
            }
        }
        let bound = rate * horizon.as_secs_f64() + burst
            // Debt admission can overshoot by one payload.
            + 10_000.0;
        prop_assert!(admitted as f64 <= bound,
            "admitted {admitted} > bound {bound}");
    }
}

// ---------------------------------------------------------------------
// Playability
// ---------------------------------------------------------------------

proptest! {
    /// Playability is monotone under adding pieces and bounded by the
    /// downloaded fraction.
    #[test]
    fn playability_monotone_and_bounded(
        n in 1u32..128,
        order in vec(any::<u32>(), 1..128),
    ) {
        let piece = 1000u32;
        let length = n as u64 * piece as u64 - 137; // short last piece
        let mut bf = Bitfield::new(n);
        let mut last = 0.0f64;
        for i in order {
            bf.set(i % n);
            let p = playable_fraction(&bf, piece, length);
            let downloaded: u64 = bf.iter_set()
                .map(|ix| {
                    let start = ix as u64 * piece as u64;
                    (start + piece as u64).min(length) - start
                })
                .sum();
            let dl_frac = downloaded as f64 / length as f64;
            prop_assert!(p >= last - 1e-12, "monotone violated");
            prop_assert!(p <= dl_frac + 1e-12, "playable beyond downloaded");
            last = p;
        }
    }
}

// ---------------------------------------------------------------------
// Max-min fairness
// ---------------------------------------------------------------------

proptest! {
    /// No resource is oversubscribed, and every flow with spare capacity
    /// everywhere it travels is not starved.
    #[test]
    fn max_min_feasible_and_work_conserving(
        n_res in 1usize..10,
        flows_raw in vec((any::<usize>(), any::<usize>()), 1..40),
        caps_raw in vec(1.0f64..1_000.0, 10),
    ) {
        let caps: Vec<f64> = caps_raw[..n_res].to_vec();
        let flows: Vec<FlowDemand> = flows_raw
            .iter()
            .map(|&(a, b)| FlowDemand::new(a % n_res, b % n_res))
            .collect();
        let rates = max_min_rates(&flows, &caps);
        prop_assert_eq!(rates.len(), flows.len());
        let mut used = vec![0.0f64; n_res];
        for (f, r) in flows.iter().zip(&rates) {
            prop_assert!(*r >= 0.0);
            used[f.r1] += r;
            if let Some(r2) = f.r2 {
                used[r2] += r;
            }
            if let Some(r3) = f.r3 {
                used[r3] += r;
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            prop_assert!(*u <= c * (1.0 + 1e-9) + 1e-9, "oversubscribed: {u} > {c}");
        }
        // Every flow is frozen by some saturated resource.
        for (f, r) in flows.iter().zip(&rates) {
            let saturated = [Some(f.r1), f.r2, f.r3]
                .into_iter()
                .flatten()
                .any(|res| used[res] >= caps[res] * (1.0 - 1e-6));
            prop_assert!(saturated || *r > 0.0, "flow starved with spare capacity");
        }
    }
}

// ---------------------------------------------------------------------
// Event queue ordering
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn event_queue_pops_in_time_then_fifo_order(
        times in vec(0u64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(i > li, "FIFO tie-break violated");
                }
            }
            last = Some((t, i));
        }
    }
}

// ---------------------------------------------------------------------
// Torrent progress
// ---------------------------------------------------------------------

proptest! {
    /// Receiving every block exactly once completes the torrent, no
    /// matter the interleaving across connections.
    #[test]
    fn progress_completes_under_any_interleaving(
        pieces in 1u32..20,
        piece_len in 1u32..8,
        seed in any::<u64>(),
    ) {
        use simnet::rng::SimRng;
        let block = 16u32;
        let piece_len = piece_len * block;
        let length = pieces as u64 * piece_len as u64 - 5;
        let mut p = TorrentProgress::with_block_size(piece_len, length, block);
        let mut blocks = Vec::new();
        for piece in 0..p.num_pieces() {
            for b in 0..p.blocks_in_piece(piece) {
                blocks.push(p.block_ref(piece, b));
            }
        }
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut blocks);
        let mut completed = 0u32;
        for (i, b) in blocks.iter().enumerate() {
            match p.on_block(*b, (i % 3) as u64) {
                bittorrent::progress::BlockOutcome::Progress { completed_piece } => {
                    if completed_piece.is_some() {
                        completed += 1;
                    }
                }
                bittorrent::progress::BlockOutcome::Duplicate => {
                    prop_assert!(false, "no duplicates were sent");
                }
            }
        }
        prop_assert_eq!(completed, p.num_pieces());
        prop_assert!(p.is_complete());
        prop_assert_eq!(p.bytes_downloaded(), length);
    }
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

/// Strategy over non-handshake wire messages (with payload for `Piece`).
fn wire_message() -> impl Strategy<Value = (bittorrent::wire::Message, Option<Vec<u8>>)> {
    use bittorrent::bitfield::Bitfield;
    use bittorrent::wire::{BlockRef, Message};
    let block = (any::<u32>(), any::<u32>(), 1u32..64).prop_map(|(p, o, l)| BlockRef {
        piece: p,
        offset: o,
        len: l,
    });
    prop_oneof![
        Just((Message::KeepAlive, None)),
        Just((Message::Choke, None)),
        Just((Message::Unchoke, None)),
        Just((Message::Interested, None)),
        Just((Message::NotInterested, None)),
        any::<u32>().prop_map(|index| (Message::Have { index }, None)),
        (1u32..64, any::<u64>()).prop_map(|(len, bits)| {
            let mut bf = Bitfield::new(len);
            for i in 0..len {
                if bits & (1 << (i % 64)) != 0 {
                    bf.set(i);
                }
            }
            (Message::Bitfield(bf), None)
        }),
        block.clone().prop_map(|b| (Message::Request(b), None)),
        block.clone().prop_map(|b| (Message::Cancel(b), None)),
        block.prop_map(|b| {
            let data = vec![0xAB; b.len as usize];
            (Message::Piece(b), Some(data))
        }),
    ]
}

proptest! {
    /// encode → decode is the identity for every message, and the wire
    /// length reported matches the encoded size.
    #[test]
    fn wire_codec_roundtrips((msg, payload) in wire_message()) {
        use bittorrent::wire::{decode, encode};
        let num_pieces = match &msg {
            bittorrent::wire::Message::Bitfield(bf) => bf.len(),
            _ => 64,
        };
        let mut buf = Vec::new();
        encode(&msg, payload.as_deref(), &mut buf);
        prop_assert_eq!(buf.len() as u32, msg.wire_len());
        let decoded = decode(&buf, num_pieces).unwrap().expect("complete message");
        prop_assert_eq!(decoded.message, msg);
        prop_assert_eq!(decoded.consumed, buf.len());
        if let (Some((s, e)), Some(data)) = (decoded.payload, payload) {
            prop_assert_eq!(&buf[s..e], &data[..]);
        }
    }

    /// The stream decoder never panics on arbitrary bytes.
    #[test]
    fn wire_decoder_never_panics(bytes in vec(any::<u8>(), 0..128), n in 0u32..64) {
        let _ = bittorrent::wire::decode(&bytes, n);
    }
}

// ---------------------------------------------------------------------
// Choker invariants
// ---------------------------------------------------------------------

proptest! {
    /// The unchoke set never exceeds slots+1, never contains an
    /// uninterested peer, and always includes the highest-credit
    /// interested peer.
    #[test]
    fn choker_invariants(
        peers_raw in vec((any::<bool>(), 0.0f64..1e6), 0..30),
        slots in 1usize..6,
        seed in any::<u64>(),
    ) {
        use bittorrent::choker::{Choker, ChokerConfig, PeerSnapshot};
        use simnet::rng::SimRng;
        let peers: Vec<PeerSnapshot> = peers_raw
            .iter()
            .enumerate()
            .map(|(k, &(interested, credit))| PeerSnapshot {
                key: k as u64,
                interested,
                credit,
            })
            .collect();
        let mut ch = Choker::new(ChokerConfig {
            upload_slots: slots,
            ..ChokerConfig::default()
        });
        let mut rng = SimRng::new(seed);
        let d = ch.rechoke(SimTime::ZERO, &peers, &mut rng);
        prop_assert!(d.unchoked.len() <= slots + 1, "too many unchoked");
        for k in &d.unchoked {
            let p = peers.iter().find(|p| p.key == *k).expect("known peer");
            prop_assert!(p.interested, "unchoked an uninterested peer");
        }
        // The top interested peer (if any) always gets a regular slot.
        if let Some(top) = peers
            .iter()
            .filter(|p| p.interested)
            .max_by(|a, b| a.credit.partial_cmp(&b.credit).unwrap())
        {
            prop_assert!(d.unchoked.contains(&top.key), "top peer choked");
        }
        // No duplicates.
        let mut keys = d.unchoked.clone();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), d.unchoked.len());
    }
}

// ---------------------------------------------------------------------
// AM filter invariants
// ---------------------------------------------------------------------

proptest! {
    /// The AM filter never drops anything that is not a DUPACK, never
    /// reorders, and decoupled output always keeps the original data
    /// segment intact.
    #[test]
    fn am_filter_never_harms_data(
        segs in vec((any::<u32>(), any::<u32>(), 0u32..2000), 1..60),
        incoming_heavy in any::<bool>(),
    ) {
        use sim_tcp::segment::{SegFlags, Segment};
        use sim_tcp::seq::SeqNum;
        use wp2p::am::{AgeFilter, AmConfig, AmOutput};
        let mut f = AgeFilter::new(AmConfig::default());
        let mut now = SimTime::ZERO;
        if incoming_heavy {
            // Mature the connection.
            for i in 0..40u32 {
                f.on_incoming(
                    &Segment {
                        seq: SeqNum(i * 1460),
                        ack: SeqNum(0),
                        flags: SegFlags { ack: true, ..Default::default() },
                        payload: 1460,
                        window: 65535,
                    },
                    now,
                );
                now += SimDuration::from_millis(5);
            }
        }
        for (seq, ack, payload) in segs {
            let seg = Segment {
                seq: SeqNum(seq),
                ack: SeqNum(ack),
                flags: SegFlags { ack: true, ..Default::default() },
                payload,
                window: 65535,
            };
            match f.on_outgoing(seg, now) {
                AmOutput::Pass(out) => prop_assert_eq!(out, seg),
                AmOutput::Decoupled { pure_ack, data } => {
                    prop_assert_eq!(data, seg, "data must pass unmodified");
                    prop_assert!(pure_ack.is_pure_ack());
                    prop_assert_eq!(pure_ack.ack, seg.ack);
                }
                AmOutput::Drop => {
                    // Only ever DUPACKs (pure acks) may be dropped.
                    prop_assert!(seg.is_pure_ack(), "dropped a data segment!");
                }
            }
            now += SimDuration::from_millis(1);
        }
    }
}
