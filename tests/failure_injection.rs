//! Failure-injection tests: deterministic [`FaultPlan`] scenarios replayed
//! into both worlds, with the swarm-wide invariant checker live throughout.
//!
//! Every scenario drives a seeded fault schedule through a
//! [`FaultInjector`] and runs [`InvariantChecker`] on every tick — an
//! invariant violation panics the test regardless of the scenario's own
//! assertions. The legacy mobility/parameter-change tests at the bottom
//! predate the fault subsystem and stay as independent coverage.

use bittorrent::client::ClientConfig;
use bittorrent::metainfo::Metainfo;
use p2p_simulation::experiments::faults::replay_flow;
use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskKey, TaskSpec, TorrentSpec};
use p2p_simulation::invariants::InvariantChecker;
use p2p_simulation::packet::{PacketConfig, PacketWorld};
use simnet::addr::NodeId;
use simnet::fault::{FaultInjector, FaultKind, FaultPlan};
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use simnet::wireless::WirelessConfig;

const MB: u64 = 1024 * 1024;

fn spec(len: u64, seed: u64) -> TorrentSpec {
    let meta = Metainfo::synthetic("fi.bin", "tr", 128 * 1024, len, seed);
    TorrentSpec::from_metainfo(&meta, 128 * 1024)
}

/// One seed + one leech flow world; returns `(world, leech_task)`.
fn seed_leech_world(seed: u64, len: u64) -> (FlowWorld, TaskKey) {
    let torrent = spec(len, seed);
    let mut w = FlowWorld::new(FlowConfig::default(), seed);
    let sn = w.add_node(Access::campus());
    w.add_task(TaskSpec::default_client(sn, torrent, true));
    let ln = w.add_node(Access::residential());
    let t = w.add_task(TaskSpec::default_client(ln, torrent, false));
    (w, t)
}

/// Replays `plan` into `w` until `deadline` with invariants checked every
/// tick; returns the number of fault actions applied.
fn run_flow_with_plan(w: &mut FlowWorld, plan: &FaultPlan, deadline: SimTime) -> usize {
    let mut inj = FaultInjector::new(plan);
    let mut ck = InvariantChecker::new();
    w.start();
    w.run_until(deadline, |w| {
        inj.poll(w);
        ck.check_flow(w);
    });
    assert!(ck.checks() > 0, "invariant checker never ran");
    inj.applied()
}

// ---------------------------------------------------------------------
// Named FaultPlan scenarios — flow world
// ---------------------------------------------------------------------

/// A severe loss burst on the leech derates its capacity but the
/// download completes with clean accounting.
#[test]
fn scenario_loss_burst_on_leech() {
    let (mut w, t) = seed_leech_world(11, 4 * MB);
    let mut plan = FaultPlan::empty(11);
    plan.push(
        SimTime::from_secs(10),
        FaultKind::LossBurst {
            node: NodeId(1),
            ber: 8e-5,
            duration: SimDuration::from_secs(40),
        },
    );
    let applied = run_flow_with_plan(&mut w, &plan, SimTime::from_secs(300));
    assert_eq!(applied, 2, "burst begin + end");
    assert_eq!(w.progress_fraction(t), 1.0);
    assert!(w.downloaded_bytes(t) <= 4 * MB);
}

/// A black-hole stalls the leech completely mid-download; transfer
/// resumes once connectivity returns.
#[test]
fn scenario_blackhole_stalls_then_recovers() {
    // Big enough that the hole (15 s) opens mid-transfer: residential
    // downlink moves ~0.5 MB/s, so 16 MB needs ~32 s of connected time.
    let (mut w, t) = seed_leech_world(12, 16 * MB);
    let mut plan = FaultPlan::empty(12);
    plan.push(
        SimTime::from_secs(15),
        FaultKind::LinkBlackhole {
            node: NodeId(1),
            duration: SimDuration::from_secs(60),
        },
    );
    let mut stalled_frac = None;
    let mut inj = FaultInjector::new(&plan);
    let mut ck = InvariantChecker::new();
    w.start();
    w.run_until(SimTime::from_secs(400), |w| {
        inj.poll(w);
        ck.check_flow(w);
        // Sample progress while the hole is open.
        if w.now() > SimTime::from_secs(70) && stalled_frac.is_none() {
            stalled_frac = Some(w.progress_fraction(t));
        }
    });
    let stalled = stalled_frac.expect("sampled");
    assert!(stalled < 1.0, "black-hole should stall the transfer");
    assert_eq!(
        w.progress_fraction(t),
        1.0,
        "recovers after the hole closes"
    );
}

/// Address churn mid-download: progress survives the re-initiation.
#[test]
fn scenario_address_churn_preserves_progress() {
    let (mut w, t) = seed_leech_world(13, 4 * MB);
    let mut plan = FaultPlan::empty(13);
    plan.push(
        SimTime::from_secs(30),
        FaultKind::AddressChurn { node: NodeId(1) },
    );
    plan.push(
        SimTime::from_secs(60),
        FaultKind::AddressChurn { node: NodeId(1) },
    );
    run_flow_with_plan(&mut w, &plan, SimTime::from_secs(400));
    assert_eq!(w.progress_fraction(t), 1.0);
    assert!(w.task_generation(t) >= 2, "churn forces re-initiation");
}

/// The tracker is down when the swarm starts: discovery is delayed until
/// the outage ends, then the download proceeds normally.
#[test]
fn scenario_tracker_outage_delays_discovery() {
    let (mut w, t) = seed_leech_world(14, 2 * MB);
    let mut plan = FaultPlan::empty(14);
    plan.push(
        SimTime::from_millis(250),
        FaultKind::TrackerOutage {
            duration: SimDuration::from_secs(90),
        },
    );
    let mut frac_during = None;
    let mut inj = FaultInjector::new(&plan);
    let mut ck = InvariantChecker::new();
    w.start();
    w.run_until(SimTime::from_secs(500), |w| {
        inj.poll(w);
        ck.check_flow(w);
        if w.now() > SimTime::from_secs(80) && frac_during.is_none() {
            frac_during = Some(w.progress_fraction(t));
        }
    });
    assert_eq!(
        frac_during.expect("sampled"),
        0.0,
        "no peers can be discovered while the tracker is down"
    );
    assert_eq!(w.progress_fraction(t), 1.0, "recovers via re-announce");
}

/// A bandwidth squeeze shrinks the leech's pipe; rates stay feasible
/// (checked every tick) and the transfer still completes.
#[test]
fn scenario_bandwidth_squeeze_stays_feasible() {
    let (mut w, t) = seed_leech_world(15, 4 * MB);
    let mut plan = FaultPlan::empty(15);
    plan.push(
        SimTime::from_secs(10),
        FaultKind::BandwidthSqueeze {
            node: NodeId(1),
            factor: 0.15,
            duration: SimDuration::from_secs(120),
        },
    );
    run_flow_with_plan(&mut w, &plan, SimTime::from_secs(500));
    assert_eq!(w.progress_fraction(t), 1.0);
}

/// The leech crashes and restarts: verified pieces survive the crash.
#[test]
fn scenario_peer_crash_and_restart_resumes() {
    let (mut w, t) = seed_leech_world(16, 4 * MB);
    let mut plan = FaultPlan::empty(16);
    plan.push(
        SimTime::from_secs(20),
        FaultKind::PeerCrash {
            node: NodeId(1),
            downtime: SimDuration::from_secs(30),
        },
    );
    let applied = run_flow_with_plan(&mut w, &plan, SimTime::from_secs(400));
    assert_eq!(applied, 2, "crash + restart");
    assert_eq!(w.progress_fraction(t), 1.0);
    assert!(w.task_generation(t) >= 1, "crash forces re-initiation");
}

/// A wP2P mobile leech with identity retention rides out a churn storm;
/// the invariant checker asserts its peer-id never changes.
#[test]
fn scenario_identity_retention_survives_churn_storm() {
    let torrent = spec(4 * MB, 17);
    let mut w = FlowWorld::new(FlowConfig::default(), 17);
    let sn = w.add_node(Access::campus());
    w.add_task(TaskSpec::default_client(sn, torrent, true));
    let m = w.add_node(Access::Wireless {
        capacity: 300_000.0,
    });
    let t = w.add_task(TaskSpec {
        node: m,
        torrent,
        start_complete: false,
        start_fraction: None,
        start_at: SimTime::ZERO,
        make_config: Box::new(ClientConfig::default),
        wp2p: wp2p::config::WP2pConfig::full(300_000.0),
    });
    let mut plan = FaultPlan::empty(17);
    for k in 0..5 {
        plan.push(
            SimTime::from_secs(20 + 30 * k),
            FaultKind::AddressChurn { node: NodeId(1) },
        );
    }
    run_flow_with_plan(&mut w, &plan, SimTime::from_secs(400));
    assert!(w.task_retains_identity(t));
    assert!(w.task_generation(t) >= 5);
    assert!(
        w.progress_fraction(t) > 0.5,
        "churn storm should slow, not stop: {:.2}",
        w.progress_fraction(t)
    );
}

/// Overlapping faults on the same node (squeeze + loss burst + churn)
/// compose without corrupting accounting.
#[test]
fn scenario_overlapping_faults_compose() {
    let (mut w, t) = seed_leech_world(18, 4 * MB);
    let mut plan = FaultPlan::empty(18);
    plan.push(
        SimTime::from_secs(10),
        FaultKind::BandwidthSqueeze {
            node: NodeId(1),
            factor: 0.3,
            duration: SimDuration::from_secs(100),
        },
    );
    plan.push(
        SimTime::from_secs(30),
        FaultKind::LossBurst {
            node: NodeId(1),
            ber: 5e-5,
            duration: SimDuration::from_secs(40),
        },
    );
    plan.push(
        SimTime::from_secs(50),
        FaultKind::AddressChurn { node: NodeId(1) },
    );
    run_flow_with_plan(&mut w, &plan, SimTime::from_secs(600));
    assert_eq!(w.progress_fraction(t), 1.0);
    assert!(w.downloaded_bytes(t) <= 4 * MB);
}

/// Soak: a generated plan with every fault kind enabled against a small
/// swarm. The assertions are the invariants themselves.
#[test]
fn scenario_generated_plan_soak() {
    let replay = replay_flow(0xF1A7, SimDuration::from_secs(120));
    assert!(replay.applied > 0, "plan applied no faults");
    assert!(replay.checks > 100, "checker barely ran: {}", replay.checks);
    for (i, p) in replay.progress.iter().enumerate() {
        assert!(
            (0.0..=1.0).contains(p),
            "task {i} progress out of range: {p}"
        );
    }
}

/// Same seed ⇒ byte-identical fault schedule and byte-identical world
/// trace (the acceptance bar for reproducing CI failures locally).
#[test]
fn scenario_same_seed_is_byte_identical() {
    let a = replay_flow(0xBEE, SimDuration::from_secs(90));
    let b = replay_flow(0xBEE, SimDuration::from_secs(90));
    assert_eq!(a.schedule, b.schedule, "fault schedules differ across runs");
    assert_eq!(a.trace, b.trace, "world traces differ across runs");
    assert_eq!(a.applied, b.applied);
    assert_eq!(a.progress, b.progress);
    // And a different seed actually produces a different schedule.
    let c = replay_flow(0xBEF, SimDuration::from_secs(90));
    assert_ne!(a.schedule, c.schedule, "seed does not influence the plan");
}

// ---------------------------------------------------------------------
// Named FaultPlan scenarios — packet world
// ---------------------------------------------------------------------

/// Replays `plan` into `w` until `deadline` with invariants checked on
/// every event; returns the number of fault actions applied.
fn run_packet_with_plan(w: &mut PacketWorld, plan: &FaultPlan, deadline: SimTime) -> usize {
    let mut inj = FaultInjector::new(plan);
    let mut ck = InvariantChecker::new();
    w.run_until(deadline, |w| {
        inj.poll(w);
        ck.check_packet(w);
    });
    assert!(ck.checks() > 0, "invariant checker never ran");
    inj.applied()
}

/// A per-segment loss burst mid-transfer: TCP rides it out and delivers
/// the stream exactly once.
#[test]
fn scenario_packet_loss_burst_exactly_once() {
    let mut w = PacketWorld::new(PacketConfig::default(), 21);
    let wired = w.add_node(None);
    let mobile = w.add_node(Some(WirelessConfig::wlan_80211g()));
    let conn = w.open_tcp(wired, mobile);
    w.tcp_write(conn, true, 3_000_000);
    let mut plan = FaultPlan::empty(21);
    plan.push(
        SimTime::from_millis(500),
        FaultKind::LossBurst {
            node: NodeId(1),
            ber: 5e-5,
            duration: SimDuration::from_secs(2),
        },
    );
    let applied = run_packet_with_plan(&mut w, &plan, SimTime::from_secs(60));
    assert_eq!(applied, 2);
    assert_eq!(
        w.tcp_delivered(conn, false),
        3_000_000,
        "exactly-once delivery"
    );
    let ep = w.endpoint(conn, true).unwrap();
    assert!(ep.stats().retransmissions > 0, "burst left no scars");
}

/// A black-hole freezes the connection; retransmission recovers the
/// stream after it lifts, with sequence space intact.
#[test]
fn scenario_packet_blackhole_recovers() {
    let mut w = PacketWorld::new(PacketConfig::default(), 22);
    let wired = w.add_node(None);
    let mobile = w.add_node(Some(WirelessConfig::wlan_80211g()));
    let conn = w.open_tcp(wired, mobile);
    w.tcp_write(conn, true, 1_000_000);
    let mut plan = FaultPlan::empty(22);
    plan.push(
        SimTime::from_millis(300),
        FaultKind::LinkBlackhole {
            node: NodeId(1),
            duration: SimDuration::from_secs(3),
        },
    );
    run_packet_with_plan(&mut w, &plan, SimTime::from_secs(120));
    assert_eq!(
        w.tcp_delivered(conn, false),
        1_000_000,
        "recovers after the hole"
    );
}

// ---------------------------------------------------------------------
// Legacy scenarios (predate FaultPlan; independent coverage)
// ---------------------------------------------------------------------

/// Seed churn: the only seed flaps on/off; the leech still finishes
/// because progress survives the gaps.
#[test]
fn download_survives_seed_churn() {
    let torrent = spec(8 * MB, 1);
    let mut w = FlowWorld::new(FlowConfig::default(), 1);
    let sn = w.add_node(Access::campus());
    w.add_task(TaskSpec::default_client(sn, torrent, true));
    // The seed itself "moves" every 45 s: its connections black-hole and
    // it reappears at a fresh address.
    w.set_mobility(
        sn,
        MobilityProcess::periodic(SimDuration::from_secs(45), SimDuration::from_secs(5)),
    );
    let ln = w.add_node(Access::residential());
    let t = w.add_task(TaskSpec::default_client(ln, torrent, false));
    w.start();
    w.run_until(SimTime::from_secs(900), |_| {});
    assert!(
        w.progress_fraction(t) > 0.5,
        "churn should slow, not stop, the download: {:.2}",
        w.progress_fraction(t)
    );
    // No piece is ever double-counted across re-initiations.
    assert!(w.downloaded_bytes(t) <= 8 * MB);
}

/// A loss burst mid-transfer: BER spikes 100×, then recovers; TCP rides
/// it out and delivers everything exactly once.
#[test]
fn tcp_survives_mid_run_ber_spike() {
    let mut cfg = PacketConfig::default();
    cfg.tcp.recv_window = 64 * 1024;
    let mut w = PacketWorld::new(cfg, 2);
    let mobile = w.add_node(Some(WirelessConfig {
        bandwidth_bps: 400_000 * 8,
        prop_delay: SimDuration::from_millis(2),
        queue_frames: 64,
        ber: 1e-6,
        per_frame_overhead: SimDuration::ZERO,
    }));
    let fixed = w.add_node(None);
    let conn = w.open_tcp(mobile, fixed);
    w.tcp_write(conn, false, 3_000_000);
    let mut spiked = false;
    let mut recovered = false;
    w.run_until(SimTime::from_secs(120), |w| {
        let t = w.now().as_secs_f64();
        if t > 5.0 && !spiked {
            spiked = true;
            w.set_ber(mobile, 5e-5); // brutal burst
        }
        if t > 12.0 && !recovered {
            recovered = true;
            w.set_ber(mobile, 1e-6);
        }
    });
    assert!(spiked && recovered);
    assert_eq!(
        w.tcp_delivered(conn, true),
        3_000_000,
        "exactly-once delivery"
    );
    let ep = w.endpoint(conn, false).unwrap();
    assert!(ep.stats().retransmissions > 0);
}

/// Dead addresses: a client fed only unroutable peers keeps running,
/// records failures, and picks up real peers from its next announce.
#[test]
fn dials_to_dead_addresses_fail_cleanly() {
    let torrent = spec(2 * MB, 3);
    let mut w = FlowWorld::new(FlowConfig::default(), 3);
    // The seed joins late (after the leech's first announce returns an
    // empty swarm), so the leech must recover via re-announce.
    let ln = w.add_node(Access::residential());
    let t = w.add_task(TaskSpec::default_client(ln, torrent, false));
    let sn = w.add_node(Access::campus());
    let _seed = w.add_task(TaskSpec::default_client(sn, torrent, true));
    w.start();
    w.run_until(SimTime::from_secs(300), |_| {});
    assert!(
        w.progress_fraction(t) > 0.9,
        "leech should find the late seed via re-announce: {:.2}",
        w.progress_fraction(t)
    );
}

/// Extreme mobility (shorter period than the recovery path) never panics
/// and never corrupts progress accounting.
#[test]
fn pathological_mobility_is_stable() {
    let torrent = spec(16 * MB, 4);
    let mut w = FlowWorld::new(FlowConfig::default(), 4);
    let sn = w.add_node(Access::campus());
    w.add_task(TaskSpec::default_client(sn, torrent, true));
    let m = w.add_node(Access::Wireless {
        capacity: 300_000.0,
    });
    let t = w.add_task(TaskSpec {
        node: m,
        torrent,
        start_complete: false,
        start_fraction: None,
        start_at: SimTime::ZERO,
        make_config: Box::new(ClientConfig::default),
        wp2p: wp2p::config::WP2pConfig::full(300_000.0),
    });
    // Hand-off every 10 s with 4 s outages: barely any connected time.
    w.set_mobility(
        m,
        MobilityProcess::periodic(SimDuration::from_secs(10), SimDuration::from_secs(4)),
    );
    w.start();
    w.run_until(SimTime::from_secs(300), |_| {});
    let frac = w.progress_fraction(t);
    assert!((0.0..=1.0).contains(&frac));
    assert!(w.downloaded_bytes(t) <= 16 * MB);
    // The world survived ~20 re-initiations; the series is monotone.
    let pts = w.download_series(t).points();
    assert!(
        pts.windows(2).all(|p| p[1].1 >= p[0].1),
        "series not monotone"
    );
}

/// Stopping a task mid-run releases its swarm slot and the rest of the
/// swarm keeps functioning.
#[test]
fn stopping_tasks_mid_run_is_clean() {
    let torrent = spec(8 * MB, 5);
    let mut w = FlowWorld::new(FlowConfig::default(), 5);
    let sn = w.add_node(Access::campus());
    w.add_task(TaskSpec::default_client(sn, torrent, true));
    let l1 = w.add_node(Access::residential());
    let t1 = w.add_task(TaskSpec::default_client(l1, torrent, false));
    let l2 = w.add_node(Access::residential());
    let t2 = w.add_task(TaskSpec::default_client(l2, torrent, false));
    w.start();
    w.run_until(SimTime::from_secs(40), |_| {});
    w.stop_task(t1, true);
    w.run_until(SimTime::from_secs(240), |_| {});
    assert_eq!(w.progress_fraction(t2), 1.0, "survivor completes");
    assert_eq!(w.connection_count(t1), 0, "stopped task has no connections");
}
