//! Failure-injection tests: the system keeps its invariants under churn,
//! loss bursts, dead addresses, and mid-run parameter changes.

use bittorrent::client::ClientConfig;
use bittorrent::metainfo::Metainfo;
use p2p_simulation::flow::{Access, FlowConfig, FlowWorld, TaskSpec, TorrentSpec};
use p2p_simulation::packet::{PacketConfig, PacketWorld};
use simnet::mobility::MobilityProcess;
use simnet::time::{SimDuration, SimTime};
use simnet::wireless::WirelessConfig;

const MB: u64 = 1024 * 1024;

fn spec(len: u64, seed: u64) -> TorrentSpec {
    let meta = Metainfo::synthetic("fi.bin", "tr", 128 * 1024, len, seed);
    TorrentSpec::from_metainfo(&meta, 128 * 1024)
}

/// Seed churn: the only seed flaps on/off; the leech still finishes
/// because progress survives the gaps.
#[test]
fn download_survives_seed_churn() {
    let torrent = spec(8 * MB, 1);
    let mut w = FlowWorld::new(FlowConfig::default(), 1);
    let sn = w.add_node(Access::campus());
    let seed_task = w.add_task(TaskSpec::default_client(sn, torrent, true));
    // The seed itself "moves" every 45 s: its connections black-hole and
    // it reappears at a fresh address.
    w.set_mobility(
        sn,
        MobilityProcess::periodic(SimDuration::from_secs(45), SimDuration::from_secs(5)),
    );
    let ln = w.add_node(Access::residential());
    let t = w.add_task(TaskSpec::default_client(ln, torrent, false));
    w.start();
    w.run_until(SimTime::from_secs(900), |_| {});
    let _ = seed_task;
    assert!(
        w.progress_fraction(t) > 0.5,
        "churn should slow, not stop, the download: {:.2}",
        w.progress_fraction(t)
    );
    // No piece is ever double-counted across re-initiations.
    assert!(w.downloaded_bytes(t) <= 8 * MB);
}

/// A loss burst mid-transfer: BER spikes 100×, then recovers; TCP rides
/// it out and delivers everything exactly once.
#[test]
fn tcp_survives_mid_run_ber_spike() {
    let mut cfg = PacketConfig::default();
    cfg.tcp.recv_window = 64 * 1024;
    let mut w = PacketWorld::new(cfg, 2);
    let mobile = w.add_node(Some(WirelessConfig {
        bandwidth_bps: 400_000 * 8,
        prop_delay: SimDuration::from_millis(2),
        queue_frames: 64,
        ber: 1e-6,
        per_frame_overhead: SimDuration::ZERO,
    }));
    let fixed = w.add_node(None);
    let conn = w.open_tcp(mobile, fixed);
    w.tcp_write(conn, false, 3_000_000);
    let mut spiked = false;
    let mut recovered = false;
    w.run_until(SimTime::from_secs(120), |w| {
        let t = w.now().as_secs_f64();
        if t > 5.0 && !spiked {
            spiked = true;
            w.set_ber(mobile, 5e-5); // brutal burst
        }
        if t > 12.0 && !recovered {
            recovered = true;
            w.set_ber(mobile, 1e-6);
        }
    });
    assert!(spiked && recovered);
    assert_eq!(w.tcp_delivered(conn, true), 3_000_000, "exactly-once delivery");
    let ep = w.endpoint(conn, false).unwrap();
    assert!(ep.stats().retransmissions > 0);
}

/// Dead addresses: a client fed only unroutable peers keeps running,
/// records failures, and picks up real peers from its next announce.
#[test]
fn dials_to_dead_addresses_fail_cleanly() {
    let torrent = spec(2 * MB, 3);
    let mut w = FlowWorld::new(FlowConfig::default(), 3);
    // The seed joins late (after the leech's first announce returns an
    // empty swarm), so the leech must recover via re-announce.
    let ln = w.add_node(Access::residential());
    let t = w.add_task(TaskSpec::default_client(ln, torrent, false));
    let sn = w.add_node(Access::campus());
    let _seed = w.add_task(TaskSpec::default_client(sn, torrent, true));
    w.start();
    w.run_until(SimTime::from_secs(300), |_| {});
    assert!(
        w.progress_fraction(t) > 0.9,
        "leech should find the late seed via re-announce: {:.2}",
        w.progress_fraction(t)
    );
}

/// Extreme mobility (shorter period than the recovery path) never panics
/// and never corrupts progress accounting.
#[test]
fn pathological_mobility_is_stable() {
    let torrent = spec(16 * MB, 4);
    let mut w = FlowWorld::new(FlowConfig::default(), 4);
    let sn = w.add_node(Access::campus());
    w.add_task(TaskSpec::default_client(sn, torrent, true));
    let m = w.add_node(Access::Wireless {
        capacity: 300_000.0,
    });
    let t = w.add_task(TaskSpec {
        node: m,
        torrent,
        start_complete: false,
        start_fraction: None,
        make_config: Box::new(ClientConfig::default),
        wp2p: wp2p::config::WP2pConfig::full(300_000.0),
    });
    // Hand-off every 10 s with 4 s outages: barely any connected time.
    w.set_mobility(
        m,
        MobilityProcess::periodic(SimDuration::from_secs(10), SimDuration::from_secs(4)),
    );
    w.start();
    w.run_until(SimTime::from_secs(300), |_| {});
    let frac = w.progress_fraction(t);
    assert!((0.0..=1.0).contains(&frac));
    assert!(w.downloaded_bytes(t) <= 16 * MB);
    // The world survived ~20 re-initiations; the series is monotone.
    let pts = w.download_series(t).points();
    assert!(pts.windows(2).all(|p| p[1].1 >= p[0].1), "series not monotone");
}

/// Stopping a task mid-run releases its swarm slot and the rest of the
/// swarm keeps functioning.
#[test]
fn stopping_tasks_mid_run_is_clean() {
    let torrent = spec(8 * MB, 5);
    let mut w = FlowWorld::new(FlowConfig::default(), 5);
    let sn = w.add_node(Access::campus());
    w.add_task(TaskSpec::default_client(sn, torrent, true));
    let l1 = w.add_node(Access::residential());
    let t1 = w.add_task(TaskSpec::default_client(l1, torrent, false));
    let l2 = w.add_node(Access::residential());
    let t2 = w.add_task(TaskSpec::default_client(l2, torrent, false));
    w.start();
    w.run_until(SimTime::from_secs(40), |_| {});
    w.stop_task(t1, true);
    w.run_until(SimTime::from_secs(240), |_| {});
    assert_eq!(w.progress_fraction(t2), 1.0, "survivor completes");
    assert_eq!(w.connection_count(t1), 0, "stopped task has no connections");
}
